"""Def-use, liveness and initialization analysis for CompLL functions.

The DSL has structured control flow and -- deliberately (§4.3) -- no
loops, so both directions of dataflow are *exact*, not fixpoint
approximations:

* forward walk with branch intersection/union computes definite and
  possible initialization (use-before-init);
* backward walk computes liveness (dead stores, unused locals/params/
  globals).

Operator calls that take a UDF handle (``map(G, f)``) are credited with
the UDF's transitive global reads/writes (from
:mod:`~repro.compll.analysis.purity`), so ``tau = params.threshold``
followed only by ``filter(gradient, exceeds)`` -- where ``exceeds`` reads
``tau`` -- is correctly *not* a dead store.

Rules:

* ``CLL001`` (warning): dead store -- the assigned value can never be
  read before being overwritten or going out of scope;
* ``CLL002`` (warning): unused local variable;
* ``CLL003`` (warning): unused parameter of a user-defined function
  (``encode``/``decode`` parameters are fixed by the unified API of
  Fig. 4 and exempt);
* ``CLL004`` (warning): unused global;
* ``CLL005`` (error): a local is read but never assigned on any path;
* ``CLL006`` (warning): a local may be read uninitialized on some path.

Stores whose right-hand side has side effects (``extract`` advances the
buffer cursor; ``random`` consumes RNG state; calls to global-writing
UDFs) are never reported dead -- removing them would change behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ...analysis.diagnostics import Diagnostic, ERROR, WARNING
from ..ast_nodes import (
    Assignment, Binary, Block, Call, Declaration, ExprStatement, Function,
    If, Index, Member, Name, Return, Span, Unary,
)
from ..semantics import ProgramInfo
from .purity import UdfPurity

__all__ = ["check_dataflow"]

#: Operator argument positions holding a UDF handle, by operator name.
_UDF_ARG_POSITIONS = {"map": 1, "filter": 1, "argfilter": 1, "reduce": 1}

#: Calls with observable side effects beyond their return value.
_SIDE_EFFECT_CALLS = {"extract", "random"}


def _loc(span: Optional[Span]) -> Tuple[int, int]:
    return (span.line, span.column) if span else (0, 0)


class _FunctionDataflow:
    def __init__(self, info: ProgramInfo, fn: Function,
                 purity: Dict[str, UdfPurity], path: str):
        self.info = info
        self.fn = fn
        self.purity = purity
        self.path = path
        self.is_entry = fn.name in ("encode", "decode")
        fn_info = info.functions[fn.name]
        self.locals = set(fn_info.locals)
        self.params = set(fn_info.params)
        self.diagnostics: List[Diagnostic] = []
        #: Every name this function reads, including via UDF handles.
        self.reads_anywhere: Set[str] = set()
        #: Globals this function writes (for whole-program unused check).
        self.global_writes: Set[str] = set()

    # -- expression reads -----------------------------------------------------

    def expr_reads(self, node) -> Set[str]:
        """Names whose current value the expression consumes."""
        reads: Set[str] = set()

        def walk(expr) -> None:
            if isinstance(expr, Name):
                reads.add(expr.ident)
                if expr.ident in self.purity:
                    # A bare UDF handle (map(G, f)): the operator will
                    # invoke f, observing the globals f reads.
                    reads.update(self.purity[expr.ident].reads_globals)
                return
            if isinstance(expr, Member):
                walk(expr.obj)
                return
            if isinstance(expr, Index):
                walk(expr.obj)
                walk(expr.index)
                return
            if isinstance(expr, Unary):
                walk(expr.operand)
                return
            if isinstance(expr, Binary):
                walk(expr.left)
                walk(expr.right)
                return
            if isinstance(expr, Call):
                if expr.func in self.purity:
                    summary = self.purity[expr.func]
                    reads.update(summary.reads_globals)
                for arg in expr.args:
                    walk(arg)
                return

        walk(node)
        return reads

    def expr_has_side_effects(self, node) -> bool:
        if isinstance(node, Call):
            if node.func in _SIDE_EFFECT_CALLS:
                return True
            if node.func in self.purity:
                summary = self.purity[node.func]
                if summary.writes_globals or summary.calls_random:
                    return True
            return any(self.expr_has_side_effects(arg) for arg in node.args)
        if isinstance(node, (Unary,)):
            return self.expr_has_side_effects(node.operand)
        if isinstance(node, Binary):
            return (self.expr_has_side_effects(node.left)
                    or self.expr_has_side_effects(node.right))
        if isinstance(node, Index):
            return (self.expr_has_side_effects(node.obj)
                    or self.expr_has_side_effects(node.index))
        if isinstance(node, Member):
            return self.expr_has_side_effects(node.obj)
        return False

    # -- forward pass: initialization ----------------------------------------

    def check_init(self) -> None:
        # Parameters and globals arrive initialized (globals are
        # zero-initialized state on the algorithm instance); locals only
        # become definite at their first assignment.
        definite = set(self.params) | set(self.info.globals)
        self._init_block(self.fn.body, definite, set(definite))

    def _init_block(self, block: Block, definite: Set[str],
                    maybe: Set[str]) -> Tuple[Set[str], Set[str]]:
        for stmt in block.statements:
            if isinstance(stmt, Declaration):
                if stmt.value is not None:
                    self._check_init_reads(stmt.value, definite, maybe,
                                           stmt.span)
                    definite.add(stmt.names[0])
                    maybe.add(stmt.names[0])
                # A bare declaration leaves the names uninitialized.
            elif isinstance(stmt, Assignment):
                self._check_init_reads(stmt.value, definite, maybe,
                                       stmt.span)
                target = stmt.target
                if isinstance(target, Name):
                    definite.add(target.ident)
                    maybe.add(target.ident)
                elif isinstance(target, Index):
                    self._check_init_reads(target.obj, definite, maybe,
                                           stmt.span)
                    self._check_init_reads(target.index, definite, maybe,
                                           stmt.span)
            elif isinstance(stmt, Return):
                if stmt.value is not None:
                    self._check_init_reads(stmt.value, definite, maybe,
                                           stmt.span)
            elif isinstance(stmt, If):
                self._check_init_reads(stmt.condition, definite, maybe,
                                       stmt.span)
                then_def, then_maybe = self._init_block(
                    stmt.then_block, set(definite), set(maybe))
                if stmt.else_block is not None:
                    else_def, else_maybe = self._init_block(
                        stmt.else_block, set(definite), set(maybe))
                else:
                    else_def, else_maybe = set(definite), set(maybe)
                definite = then_def & else_def
                maybe = then_maybe | else_maybe
            elif isinstance(stmt, ExprStatement):
                self._check_init_reads(stmt.expr, definite, maybe,
                                       stmt.span)
        return definite, maybe

    def _check_init_reads(self, expr, definite: Set[str], maybe: Set[str],
                          span: Optional[Span]) -> None:
        for name in sorted(self.expr_reads(expr)):
            if name not in self.locals:
                continue
            if name in definite:
                continue
            line, column = _loc(span)
            if name not in maybe:
                self.diagnostics.append(Diagnostic(
                    rule="CLL005", severity=ERROR, file=self.path,
                    line=line, column=column,
                    message=(f"{name!r} is read in {self.fn.name} but "
                             f"never assigned before this point"),
                    hint="initialize the variable at its declaration"))
            else:
                self.diagnostics.append(Diagnostic(
                    rule="CLL006", severity=WARNING, file=self.path,
                    line=line, column=column,
                    message=(f"{name!r} may be uninitialized when read in "
                             f"{self.fn.name}: some branch skips its "
                             f"assignment"),
                    hint="assign in both branches or at the declaration"))
            # Report once per variable per statement.
            definite.add(name)
            maybe.add(name)

    # -- backward pass: liveness ----------------------------------------------

    def check_liveness(self) -> None:
        # Globals stay live at function exit (another entry point or a
        # later call may read them); the entry's output parameter is
        # consumed by the caller.
        live_out: Set[str] = set(self.info.globals)
        if self.is_entry:
            live_out.add(self.fn.parameters[1].name)
        self._live_block(self.fn.body, live_out)

    def _live_block(self, block: Block, live: Set[str]) -> Set[str]:
        """Return live-in of ``block`` given ``live`` = live-out."""
        for stmt in reversed(block.statements):
            if isinstance(stmt, Return):
                # Statements textually after a return in the same block
                # are unreachable; a return restarts liveness from what
                # the caller consumes (globals persist).
                live = set(self.info.globals)
                if stmt.value is not None:
                    reads = self.expr_reads(stmt.value)
                    self.reads_anywhere |= reads
                    live |= reads
            elif isinstance(stmt, Declaration):
                if stmt.value is not None:
                    name = stmt.names[0]
                    self._note_store(name, stmt, live, declaration=True)
                    live.discard(name)
                    reads = self.expr_reads(stmt.value)
                    self.reads_anywhere |= reads
                    live |= reads
                else:
                    for name in stmt.names:
                        live.discard(name)
            elif isinstance(stmt, Assignment):
                target = stmt.target
                if isinstance(target, Name):
                    name = target.ident
                    self._note_store(name, stmt, live, declaration=False)
                    if name in self.info.globals:
                        self.global_writes.add(name)
                    live.discard(name)
                else:
                    reads = self.expr_reads(target)
                    self.reads_anywhere |= reads
                    live |= reads
                reads = self.expr_reads(stmt.value)
                self.reads_anywhere |= reads
                live |= reads
            elif isinstance(stmt, If):
                then_live = self._live_block(stmt.then_block, set(live))
                if stmt.else_block is not None:
                    else_live = self._live_block(stmt.else_block, set(live))
                else:
                    else_live = set(live)
                live = then_live | else_live
                reads = self.expr_reads(stmt.condition)
                self.reads_anywhere |= reads
                live |= reads
            elif isinstance(stmt, ExprStatement):
                reads = self.expr_reads(stmt.expr)
                self.reads_anywhere |= reads
                live |= reads
        return live

    def _note_store(self, name: str, stmt, live: Set[str],
                    declaration: bool) -> None:
        """Flag a store to ``name`` that nothing can ever read."""
        if name in live:
            return
        if self.is_entry and name == self.fn.parameters[1].name:
            return  # output assignment, consumed by the caller
        value = stmt.value
        if value is not None and self.expr_has_side_effects(value):
            return  # extract()/random() stores order the cursor/RNG
        line, column = _loc(stmt.span)
        kind = "initializer of" if declaration else "store to"
        self.diagnostics.append(Diagnostic(
            rule="CLL001", severity=WARNING, file=self.path,
            line=line, column=column,
            message=(f"dead {kind} {name!r} in {self.fn.name}: the value "
                     f"is never read"),
            hint="drop the assignment or use the value"))

    # -- whole-function summary ------------------------------------------------

    def check_unused(self) -> None:
        for name in sorted(self.locals - self.reads_anywhere):
            if self._local_initializer_has_side_effects(name):
                # e.g. `uint8 tail = extract(buf, uint8);` -- extracted
                # solely to advance the cursor past a header field.
                continue
            span = self._local_span(name)
            line, column = _loc(span)
            self.diagnostics.append(Diagnostic(
                rule="CLL002", severity=WARNING, file=self.path,
                line=line, column=column,
                message=f"local {name!r} in {self.fn.name} is never read",
                hint="remove the declaration"))
        if not self.is_entry:
            for param in self.fn.parameters:
                if param.name not in self.reads_anywhere:
                    line, column = _loc(param.span)
                    self.diagnostics.append(Diagnostic(
                        rule="CLL003", severity=WARNING, file=self.path,
                        line=line, column=column,
                        message=(f"parameter {param.name!r} of "
                                 f"{self.fn.name} is never used"),
                        hint="remove the parameter"))

    def _local_span(self, name: str) -> Optional[Span]:
        found: List[Optional[Span]] = []

        def walk(block: Block) -> None:
            for stmt in block.statements:
                if isinstance(stmt, Declaration) and name in stmt.names:
                    found.append(stmt.span)
                elif isinstance(stmt, If):
                    walk(stmt.then_block)
                    if stmt.else_block:
                        walk(stmt.else_block)

        walk(self.fn.body)
        return found[0] if found else None

    def _local_initializer_has_side_effects(self, name: str) -> bool:
        result: List[bool] = []

        def walk(block: Block) -> None:
            for stmt in block.statements:
                if (isinstance(stmt, Declaration) and name in stmt.names
                        and stmt.value is not None):
                    result.append(self.expr_has_side_effects(stmt.value))
                elif (isinstance(stmt, Assignment)
                      and isinstance(stmt.target, Name)
                      and stmt.target.ident == name
                      and self.expr_has_side_effects(stmt.value)):
                    result.append(True)
                elif isinstance(stmt, If):
                    walk(stmt.then_block)
                    if stmt.else_block:
                        walk(stmt.else_block)

        walk(self.fn.body)
        return any(result)


def check_dataflow(info: ProgramInfo, purity: Dict[str, UdfPurity],
                   path: str) -> List[Diagnostic]:
    """Run the per-function dataflow checks plus the unused-global scan."""
    diagnostics: List[Diagnostic] = []
    reads_all: Set[str] = set()

    for name, fn_info in info.functions.items():
        flow = _FunctionDataflow(info, fn_info.function, purity, path)
        flow.check_init()
        flow.check_liveness()
        flow.check_unused()
        diagnostics.extend(flow.diagnostics)
        reads_all |= flow.reads_anywhere

    for decl in info.program.globals:
        for name in decl.names:
            if name not in reads_all:
                line, column = _loc(decl.span)
                diagnostics.append(Diagnostic(
                    rule="CLL004", severity=WARNING, file=path,
                    line=line, column=column,
                    message=f"global {name!r} is never read",
                    hint="remove the global declaration"))

    return diagnostics
