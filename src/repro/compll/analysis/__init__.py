"""CompLL static analyzer: dataflow, constants, purity, layout proofs.

The DSL's restrictions (no loops, no recursion in practice, declared
types everywhere) make it unusually amenable to exact static analysis,
and a compression codec is unusually unforgiving of bugs: a mis-declared
bit width or a swapped ``concat`` field does not crash -- it silently
decodes garbage gradients and degrades training accuracy, the hardest
kind of bug to localize.  This package runs four passes over the checked
AST (:class:`~repro.compll.semantics.ProgramInfo`) before code
generation:

* :mod:`.dataflow`   -- reaching definitions + liveness: dead stores,
  unused locals/params/globals, use-before-init through branches
  (``CLL001``-``CLL006``);
* :mod:`.constants`  -- constant propagation with uintN bit-width /
  overflow checks (``CLL010``-``CLL013``);
* :mod:`.purity`     -- transitive UDF effect summaries gating the
  parallelizability of ``map``/``filter``/``argfilter`` per §4.3
  (``CLL020``-``CLL022``);
* :mod:`.layout`     -- the encode/decode layout-consistency prover:
  symbolically matches encode's ``concat`` against decode's ``extract``
  sequence, proving field order, types, and element counts agree
  (``CLL030``-``CLL034``).

Front-end failures (lex/parse/semantic) surface as a single ``CLL000``
error diagnostic so file-level tooling never has to catch exceptions.

Run from the command line::

    python -m repro.compll.analysis src/repro/compll/dsl_sources/*.cll
    python -m repro.compll.analysis --strict --format json file.cll

``--strict`` promotes warnings to failures (infos never fail).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...analysis.diagnostics import (
    Diagnostic, ERROR, INFO, WARNING, has_errors, render_text,
    sort_diagnostics,
)
from ..lexer import LexError
from ..parser import ParseError, parse
from ..semantics import ProgramInfo, SemanticError, analyze
from .constants import check_constants
from .dataflow import check_dataflow
from .layout import LayoutField, LayoutProof, check_layout
from .purity import UdfPurity, check_purity, compute_purity

__all__ = [
    "AnalysisReport", "LayoutField", "LayoutProof", "RULES", "UdfPurity",
    "analyze_source", "run_passes",
]

#: Every rule the analyzer can emit: id -> (default severity, summary).
#: docs/ANALYSIS.md is generated from the same table the code enforces.
RULES: Dict[str, tuple] = {
    "CLL000": (ERROR, "front-end failure (lex / parse / semantic error)"),
    "CLL001": (WARNING, "dead store: value assigned but never read"),
    "CLL002": (WARNING, "unused local variable"),
    "CLL003": (WARNING, "unused UDF parameter"),
    "CLL004": (WARNING, "unused global"),
    "CLL005": (ERROR, "use of variable before initialization"),
    "CLL006": (WARNING, "variable may be uninitialized on some paths"),
    "CLL010": (ERROR, "constant does not fit its uintN bit width"),
    "CLL011": (ERROR, "division or modulo by constant zero"),
    "CLL012": (WARNING, "constant shift amount of 32 bits or more"),
    "CLL013": (WARNING, "branch condition is a constant"),
    "CLL020": (ERROR, "global-writing UDF used in a parallel operator"),
    "CLL021": (WARNING, "UDF writes a global (order-dependent)"),
    "CLL022": (INFO, "stochastic UDF used elementwise (needs "
                     "counter-based RNG)"),
    "CLL030": (ERROR, "encode/decode field order, type, or kind "
                      "mismatch"),
    "CLL031": (WARNING, "array element count could not be proven"),
    "CLL032": (ERROR, "provable element-count mismatch"),
    "CLL033": (WARNING, "layout not statically analyzable"),
    "CLL034": (ERROR, "encode paths serialize different layouts"),
}


@dataclass
class AnalysisReport:
    """Everything the static analyzer learned about one program."""

    path: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    purity: Dict[str, UdfPurity] = field(default_factory=dict)
    layout: Optional[LayoutProof] = None

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == INFO]

    @property
    def layout_proven(self) -> bool:
        return self.layout is not None and self.layout.proven

    def ok(self, strict: bool = False) -> bool:
        """No errors (strict: no warnings either; infos never fail)."""
        return not has_errors(self.diagnostics, strict=strict)

    def render(self) -> str:
        parts = [render_text(self.diagnostics)]
        if self.layout is not None:
            parts.append(self.layout.render())
        return "\n".join(parts)


def run_passes(info: ProgramInfo, path: str = "<source>") -> AnalysisReport:
    """Run every analysis pass over a semantically checked program."""
    report = AnalysisReport(path=path)
    report.purity = compute_purity(info)
    report.diagnostics.extend(check_purity(info, report.purity, path))
    report.diagnostics.extend(check_dataflow(info, report.purity, path))
    report.diagnostics.extend(check_constants(info, path))
    layout_diags, proof = check_layout(info, path)
    report.diagnostics.extend(layout_diags)
    report.layout = proof
    report.diagnostics = sort_diagnostics(report.diagnostics)
    return report


def analyze_source(source: str, path: str = "<source>") -> AnalysisReport:
    """Parse + check + analyze DSL source, never raising.

    Front-end failures become a single ``CLL000`` error diagnostic
    carrying the failure's own location when it has one.
    """
    try:
        info = analyze(parse(source))
    except (LexError, ParseError, SemanticError) as exc:
        span = getattr(exc, "span", None)
        return AnalysisReport(path=path, diagnostics=[Diagnostic(
            rule="CLL000", severity=ERROR, file=path,
            line=span.line if span else 0,
            column=span.column if span else 0,
            message=f"{type(exc).__name__}: {exc}",
            hint="fix the program before analysis can run")])
    return run_passes(info, path)
