"""Recursive-descent parser for the CompLL DSL (§4.3).

Grammar (simplified)::

    program     := (param_block | global_decl | function)*
    param_block := 'param' IDENT '{' (type IDENT ';')* '}'
    global_decl := type IDENT (',' IDENT)* ';'
    function    := type IDENT '(' parameters ')' block
    block       := '{' statement* '}'
    statement   := declaration | assignment | 'return' expr? ';'
                 | 'if' '(' expr ')' block ('else' block)? | expr ';'
    declaration := type IDENT ('=' expr)? ';' | type IDENT (',' IDENT)+ ';'
    expression  := C-style precedence: || && == != < > <= >= << >> + - * / % unary
    call        := IDENT ('<' type '>')? '(' args ')'     (random<float>(0,1))

Types used as call arguments (``extract(buf, uint2, n)``) are captured as
``type_args`` on the Call node.  The DSL deliberately has no loops (§4.3:
"it is often unnecessary to include loops ... iterative processing
semantics are covered by the common operators").
"""

from __future__ import annotations

from typing import List, Optional

from .ast_nodes import (
    Assignment, Binary, Block, Call, Declaration, ExprStatement, Function,
    GlobalDecl, If, Index, Member, Name, Number, ParamBlock, ParamField,
    Parameter, Program, Return, Span, TypeRef, Unary,
)
from .lexer import Lexer, Token, TYPE_NAMES

__all__ = ["Parser", "ParseError", "parse"]


class ParseError(SyntaxError):
    """Raised on grammatically invalid DSL source."""


#: Binary operator precedence levels, loosest first.
_PRECEDENCE = [
    ["||"],
    ["&&"],
    ["==", "!="],
    ["<", ">", "<=", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


def parse(source: str) -> Program:
    """Parse DSL source into a :class:`Program`."""
    return Parser(source).parse_program()


def _at(token: Token) -> Span:
    return Span(line=token.line, column=token.column)


class Parser:
    def __init__(self, source: str):
        self._tokens = Lexer(source).tokens()
        self._pos = 0
        #: Param-block names double as types for function parameters.
        self._param_types = set()

    # -- token plumbing ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _next(self) -> Token:
        token = self._peek()
        self._pos += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._peek()
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, got {token.text!r} at line {token.line}")
        return self._next()

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._next()
        return None

    def _at_type(self) -> bool:
        token = self._peek()
        if token.kind == "keyword" and token.text in TYPE_NAMES:
            return True
        return token.kind == "ident" and token.text in self._param_types

    # -- top level -------------------------------------------------------------

    def parse_program(self) -> Program:
        param_blocks: List[ParamBlock] = []
        globals_: List[GlobalDecl] = []
        functions: List[Function] = []
        while self._peek().kind != "eof":
            if self._peek().kind == "keyword" and self._peek().text == "param":
                param_blocks.append(self._parse_param_block())
            elif self._at_type():
                item = self._parse_global_or_function()
                if isinstance(item, Function):
                    functions.append(item)
                else:
                    globals_.append(item)
            else:
                token = self._peek()
                raise ParseError(
                    f"unexpected {token.text!r} at line {token.line}")
        return Program(param_blocks=tuple(param_blocks),
                       globals=tuple(globals_),
                       functions=tuple(functions))

    def _parse_param_block(self) -> ParamBlock:
        start = self._expect("keyword", "param")
        name = self._expect("ident").text
        self._param_types.add(name)
        self._expect("symbol", "{")
        fields: List[ParamField] = []
        while not self._accept("symbol", "}"):
            ftoken = self._peek()
            ftype = self._parse_type()
            fname = self._expect("ident").text
            self._expect("symbol", ";")
            fields.append(ParamField(type=ftype, name=fname,
                                     span=_at(ftoken)))
        return ParamBlock(name=name, fields=tuple(fields), span=_at(start))

    def _parse_type(self) -> TypeRef:
        token = self._peek()
        if token.kind == "keyword" and token.text in TYPE_NAMES:
            self._next()
            base = token.text
        elif token.kind == "ident" and token.text in self._param_types:
            self._next()
            base = token.text
        else:
            raise ParseError(
                f"expected a type, got {token.text!r} at line {token.line}")
        pointer = bool(self._accept("symbol", "*"))
        return TypeRef(base=base, pointer=pointer)

    def _parse_global_or_function(self):
        start = self._peek()
        type_ref = self._parse_type()
        name = self._expect("ident").text
        if self._peek().kind == "symbol" and self._peek().text == "(":
            return self._parse_function_rest(type_ref, name, _at(start))
        names = [name]
        while self._accept("symbol", ","):
            names.append(self._expect("ident").text)
        self._expect("symbol", ";")
        return GlobalDecl(type=type_ref, names=tuple(names), span=_at(start))

    def _parse_function_rest(self, return_type: TypeRef, name: str,
                             span: Span) -> Function:
        self._expect("symbol", "(")
        parameters: List[Parameter] = []
        if not self._accept("symbol", ")"):
            while True:
                ptoken = self._peek()
                ptype = self._parse_type()
                pname = self._expect("ident").text
                parameters.append(Parameter(type=ptype, name=pname,
                                            span=_at(ptoken)))
                if self._accept("symbol", ")"):
                    break
                self._expect("symbol", ",")
        body = self._parse_block()
        return Function(return_type=return_type, name=name,
                        parameters=tuple(parameters), body=body, span=span)

    # -- statements --------------------------------------------------------------

    def _parse_block(self) -> Block:
        self._expect("symbol", "{")
        statements = []
        while not self._accept("symbol", "}"):
            statements.append(self._parse_statement())
        return Block(statements=tuple(statements))

    def _parse_statement(self):
        token = self._peek()
        if token.kind == "keyword" and token.text == "return":
            self._next()
            if self._accept("symbol", ";"):
                return Return(value=None, span=_at(token))
            value = self._parse_expression()
            self._expect("symbol", ";")
            return Return(value=value, span=_at(token))
        if token.kind == "keyword" and token.text == "if":
            return self._parse_if()
        if self._at_type():
            return self._parse_declaration()
        expr = self._parse_expression()
        if self._accept("symbol", "="):
            if not isinstance(expr, (Name, Member, Index)):
                raise ParseError(
                    f"invalid assignment target at line {token.line}")
            value = self._parse_expression()
            self._expect("symbol", ";")
            return Assignment(target=expr, value=value, span=_at(token))
        self._expect("symbol", ";")
        return ExprStatement(expr=expr, span=_at(token))

    def _parse_if(self) -> If:
        start = self._expect("keyword", "if")
        self._expect("symbol", "(")
        condition = self._parse_expression()
        self._expect("symbol", ")")
        then_block = self._parse_block()
        else_block = None
        if self._accept("keyword", "else"):
            if self._peek().kind == "keyword" and self._peek().text == "if":
                else_block = Block(statements=(self._parse_if(),))
            else:
                else_block = self._parse_block()
        return If(condition=condition, then_block=then_block,
                  else_block=else_block, span=_at(start))

    def _parse_declaration(self) -> Declaration:
        start = self._peek()
        type_ref = self._parse_type()
        names = [self._expect("ident").text]
        value = None
        if self._accept("symbol", "="):
            value = self._parse_expression()
        else:
            while self._accept("symbol", ","):
                names.append(self._expect("ident").text)
        self._expect("symbol", ";")
        return Declaration(type=type_ref, names=tuple(names), value=value,
                           span=_at(start))

    # -- expressions ---------------------------------------------------------------

    def _parse_expression(self):
        return self._parse_binary(0)

    def _parse_binary(self, level: int):
        if level >= len(_PRECEDENCE):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        while True:
            token = self._peek()
            if token.kind == "symbol" and token.text in _PRECEDENCE[level]:
                # Disambiguate '<' starting a template call: handled in
                # _parse_postfix before we ever get here, so plain '<' is
                # always comparison by now.
                self._next()
                right = self._parse_binary(level + 1)
                left = Binary(op=token.text, left=left, right=right,
                              span=_at(token))
            else:
                return left

    def _parse_unary(self):
        token = self._peek()
        if token.kind == "symbol" and token.text in ("-", "!"):
            self._next()
            return Unary(op=token.text, operand=self._parse_unary(),
                         span=_at(token))
        return self._parse_postfix()

    def _parse_postfix(self):
        start = self._peek()
        expr = self._parse_primary()
        while True:
            if self._accept("symbol", "."):
                field = self._expect("ident").text
                expr = Member(obj=expr, field=field, span=_at(start))
            elif self._accept("symbol", "["):
                index = self._parse_expression()
                self._expect("symbol", "]")
                expr = Index(obj=expr, index=index, span=_at(start))
            else:
                return expr

    def _parse_primary(self):
        token = self._peek()
        if token.kind == "number":
            self._next()
            return Number(text=token.text, span=_at(token))
        if token.kind == "symbol" and token.text == "(":
            self._next()
            expr = self._parse_expression()
            self._expect("symbol", ")")
            return expr
        if token.kind in ("ident",):
            return self._parse_name_or_call()
        raise ParseError(
            f"unexpected {token.text!r} at line {token.line}")

    def _parse_name_or_call(self):
        start = self._peek()
        name = self._expect("ident").text
        type_args = []
        # Template call: random<float>(...)  -- only treat '<' as template
        # brackets when a type name follows and '>' then '(' close it.
        if (self._peek().kind == "symbol" and self._peek().text == "<"
                and self._peek(1).kind == "keyword"
                and self._peek(1).text in TYPE_NAMES
                and self._peek(2).kind == "symbol" and self._peek(2).text == ">"
                and self._peek(3).kind == "symbol"
                and self._peek(3).text == "("):
            self._next()  # <
            type_args.append(self._parse_type())
            self._expect("symbol", ">")
        if self._peek().kind == "symbol" and self._peek().text == "(":
            self._next()
            args = []
            if not self._accept("symbol", ")"):
                while True:
                    if self._at_type():
                        type_args.append(self._parse_type())
                    else:
                        args.append(self._parse_expression())
                    if self._accept("symbol", ")"):
                        break
                    self._expect("symbol", ",")
            return Call(func=name, args=tuple(args),
                        type_args=tuple(type_args), span=_at(start))
        return Name(ident=name, span=_at(start))
