"""CompLL: the gradient-compression toolkit (DSL, compiler, operators).

Pipeline: :func:`parse` -> :func:`analyze` -> :func:`generate` ->
:func:`compile_algorithm`, matching the paper's lex/parse/AST-traverse/
substitute code-generation flow (§4.3) with a NumPy backend.
"""

from .codegen import CodegenError, generate
from .lexer import LexError, Lexer, Token
from .library import BUNDLED_ALGORITHMS, build, dsl_source, terngrad_source
from .operators import Cursor, Runtime
from .parser import ParseError, parse
from .printer import format_expression, format_program
from .semantics import ProgramInfo, SemanticError, analyze
from .toolkit import CompiledAlgorithm, LocStats, compile_algorithm, loc_stats
from .verify import Check, ValidationReport, validate_algorithm

__all__ = [
    "BUNDLED_ALGORITHMS",
    "CodegenError",
    "CompiledAlgorithm",
    "Cursor",
    "LexError",
    "Lexer",
    "LocStats",
    "ParseError",
    "ProgramInfo",
    "Runtime",
    "SemanticError",
    "Token",
    "Check",
    "ValidationReport",
    "analyze",
    "build",
    "compile_algorithm",
    "dsl_source",
    "format_expression",
    "format_program",
    "generate",
    "loc_stats",
    "parse",
    "terngrad_source",
    "validate_algorithm",
]
