"""CompLL: the gradient-compression toolkit (DSL, compiler, operators).

Pipeline: :func:`parse` -> :func:`analyze` -> :func:`generate` ->
:func:`compile_algorithm`, matching the paper's lex/parse/AST-traverse/
substitute code-generation flow (§4.3) with a NumPy backend.
"""

from .analysis import AnalysisReport, LayoutProof, analyze_source, run_passes
from .codegen import CodegenError, generate
from .lexer import LexError, Lexer, Token
from .library import BUNDLED_ALGORITHMS, build, dsl_source, terngrad_source
from .operators import Cursor, Runtime
from .parser import ParseError, parse
from .printer import (
    format_error, format_expression, format_program, format_source_context,
)
from .semantics import ProgramInfo, SemanticError, analyze
from .toolkit import (
    CompiledAlgorithm, LocStats, StaticAnalysisError, compile_algorithm,
    loc_stats,
)
from .verify import Check, ValidationReport, validate_algorithm

__all__ = [
    "AnalysisReport",
    "BUNDLED_ALGORITHMS",
    "CodegenError",
    "CompiledAlgorithm",
    "Cursor",
    "LayoutProof",
    "LexError",
    "Lexer",
    "LocStats",
    "ParseError",
    "ProgramInfo",
    "Runtime",
    "SemanticError",
    "StaticAnalysisError",
    "Token",
    "Check",
    "ValidationReport",
    "analyze",
    "analyze_source",
    "build",
    "compile_algorithm",
    "dsl_source",
    "format_error",
    "format_expression",
    "format_program",
    "format_source_context",
    "generate",
    "loc_stats",
    "parse",
    "run_passes",
    "terngrad_source",
    "validate_algorithm",
]
