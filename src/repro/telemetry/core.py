"""Telemetry core: spans, instant events, and a metrics registry.

The simulator's observability layer.  A :class:`TelemetryCollector` records
*spans* (named intervals of simulated time, optionally parented into a
tree), *instant events* (zero-duration annotations, e.g. injected faults),
and *metrics* (counters, gauges, histograms).  Instrumentation sites across
the hot paths -- the simulation kernel, the network fabric, the GPU model,
the CaSync task engines, the fault injector, and the training loop -- all
follow the same contract:

    tel = self.env.telemetry          # None unless a collector is attached
    span = tel.begin(...) if tel is not None else None
    ...                               # the instrumented work
    if span is not None:
        tel.finish(span, self.env.now)

**Zero-cost when disabled** is a hard guarantee: with no collector attached
every instrumentation site reduces to one ``is not None`` test, no
simulation events are created, and the event sequence -- hence every trace
hash and every result -- is bit-identical to an uninstrumented build.
Recording itself never touches the simulation clock or agenda either, so
an *attached* collector also leaves timing unchanged; it only observes.

Collectors can be attached two ways:

* explicitly, by passing ``telemetry=collector`` to
  :func:`~repro.training.loop.simulate_iteration` /
  :func:`~repro.experiments.common.run_system` /
  :meth:`~repro.hipress.framework.TrainingJob.run`;
* ambiently, with :func:`attach` / :func:`detach` (or the
  :func:`telemetry_session` context manager) -- every simulation started
  while a collector is attached records into it.  This is what the
  experiment CLI's ``--trace out.json`` flag uses.

One collector may span several simulations (e.g. a whole figure driver).
Each simulation calls :meth:`TelemetryCollector.start_run`, which assigns a
run index and a time offset so consecutive runs occupy disjoint stretches
of the exported timeline instead of overlapping at t=0.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "Span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunInfo",
    "TelemetryCollector",
    "attach",
    "detach",
    "current_collector",
    "telemetry_session",
]


class Span:
    """A named interval of simulated time on a track.

    ``track`` identifies the horizontal row the span renders on (e.g.
    ``"node3/encode"``); ``category`` groups spans for aggregation (e.g.
    ``"kernel"``, ``"transfer"``).  ``parent_id`` links child work to the
    span that caused it (a kernel launched by an encode task, a transfer
    issued by a coordinator batch).  ``attrs`` carries free-form metadata
    such as byte counts or task ids.
    """

    __slots__ = ("id", "parent_id", "name", "category", "track", "run",
                 "start", "end", "attrs")

    def __init__(self, span_id: int, name: str, category: str, track: str,
                 run: int, start: float, parent_id: Optional[int],
                 attrs: Dict[str, Any]):
        self.id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.track = track
        self.run = run
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Span length; 0.0 while still open."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def node(self) -> Optional[int]:
        """Node index parsed from a ``node<N>/...`` track, else None."""
        return _track_node(self.track)

    def __repr__(self) -> str:
        state = f"{self.start:.6f}..{self.end:.6f}" if self.finished \
            else f"{self.start:.6f}..(open)"
        return f"<Span #{self.id} {self.name!r} {self.track} {state}>"


def _track_node(track: str) -> Optional[int]:
    if track.startswith("node"):
        head = track.split("/", 1)[0][4:]
        if head.isdigit():
            return int(head)
    return None


# -- metrics ----------------------------------------------------------------

class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, Any], ...]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, Any], ...]):
        self.name = name
        self.labels = labels
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary of observed values (count/sum/min/max/mean)."""

    __slots__ = ("name", "labels", "count", "total", "min", "max")

    def __init__(self, name: str, labels: Tuple[Tuple[str, Any], ...]):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


_METRIC_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create registry of named, labelled metrics.

    A metric's identity is ``(kind, name, sorted labels)``; asking for the
    same identity twice returns the same instance, so instrumentation sites
    can call ``registry.counter("net.bytes_sent").inc(n)`` in a loop
    without holding references.
    """

    def __init__(self):
        self._metrics: Dict[Tuple, Any] = {}

    def _get(self, kind: str, name: str, labels: Dict[str, Any]):
        key = (kind, name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = _METRIC_KINDS[kind](name, key[2])
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get("histogram", name, labels)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> List[Dict[str, Any]]:
        """Flat, deterministic dump of every metric (for the exporters)."""
        rows = []
        for (kind, name, labels), metric in sorted(
                self._metrics.items(), key=lambda kv: (kv[0][0], kv[0][1],
                                                       repr(kv[0][2]))):
            row: Dict[str, Any] = {"kind": kind, "name": name,
                                   "labels": dict(labels)}
            if kind == "histogram":
                row.update(count=metric.count, sum=metric.total,
                           min=metric.min, max=metric.max, mean=metric.mean)
            else:
                row["value"] = metric.value
            rows.append(row)
        return rows


# -- the collector ----------------------------------------------------------

class RunInfo:
    """One simulation recorded into a collector: label + timeline offset."""

    __slots__ = ("index", "label", "offset")

    def __init__(self, index: int, label: str, offset: float):
        self.index = index
        self.label = label
        self.offset = offset

    def __repr__(self) -> str:
        return f"<RunInfo #{self.index} {self.label!r} @+{self.offset:.6f}s>"


class TelemetryCollector:
    """Accumulates spans, instant events, metrics, and task-graph metadata."""

    def __init__(self):
        self.spans: List[Span] = []
        self.instants: List[Dict[str, Any]] = []
        self.metrics = MetricsRegistry()
        self.runs: List[RunInfo] = []
        #: Task-graph structure captured at arm time: task id -> dep ids.
        self.task_deps: Dict[int, Tuple[int, ...]] = {}
        #: Task id -> {"kind", "label", "node"}.
        self.task_meta: Dict[int, Dict[str, Any]] = {}
        self._next_id = 0
        self._offset = 0.0
        self._high_water = 0.0

    # -- run management ---------------------------------------------------

    @property
    def run_index(self) -> int:
        """Index of the run currently recording (0 before any start_run)."""
        return max(0, len(self.runs) - 1)

    def start_run(self, label: str) -> RunInfo:
        """Open a new run: later spans are offset past all earlier ones."""
        self._offset = self._high_water
        info = RunInfo(len(self.runs), label, self._offset)
        self.runs.append(info)
        self.instant(f"run:{label}", category="run", track="sim/runs", at=0.0)
        return info

    # -- recording --------------------------------------------------------

    def begin(self, name: str, *, category: str = "span",
              track: str = "sim", parent: Union[Span, int, None] = None,
              at: float = 0.0, **attrs) -> Span:
        """Open a span at simulated time ``at`` (run offset is added)."""
        self._next_id += 1
        parent_id = parent.id if isinstance(parent, Span) else parent
        span = Span(self._next_id, name, category, track, self.run_index,
                    self._offset + at, parent_id, attrs)
        self.spans.append(span)
        return span

    def finish(self, span: Span, at: float, **attrs) -> Span:
        """Close ``span`` at simulated time ``at``; merge extra attrs."""
        span.end = self._offset + at
        if span.end < span.start:
            raise ValueError(
                f"span {span.name!r} ends before it starts "
                f"({span.end} < {span.start})")
        if attrs:
            span.attrs.update(attrs)
        if span.end > self._high_water:
            self._high_water = span.end
        return span

    def instant(self, name: str, *, category: str = "event",
                track: str = "sim", at: float = 0.0, **attrs) -> Dict[str, Any]:
        """Record a zero-duration annotation (e.g. an injected fault)."""
        record = {"name": name, "category": category, "track": track,
                  "run": self.run_index, "at": self._offset + at,
                  "attrs": attrs}
        self.instants.append(record)
        if record["at"] > self._high_water:
            self._high_water = record["at"]
        return record

    # -- metric conveniences ---------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self.metrics.histogram(name, **labels)

    # -- task-graph metadata ----------------------------------------------

    def register_task_graph(self, graph) -> None:
        """Capture a :class:`~repro.casync.tasks.TaskGraph`'s structure.

        Called by ``TaskGraph.arm`` when telemetry is enabled, so exported
        timelines can be cross-checked against the dependency DAG that
        produced them (span ordering must respect task dependencies).
        """
        for task in graph.tasks:
            deps = graph._deps.get(task.id, ())
            self.task_deps[task.id] = tuple(
                d.id for d in deps if getattr(d, "kind", None) is not None)
            self.task_meta[task.id] = {"kind": task.kind, "label": task.label,
                                       "node": task.node}

    # -- queries -----------------------------------------------------------

    def find_spans(self, track: Optional[str] = None,
                   category: Optional[str] = None,
                   name: Optional[str] = None,
                   run: Optional[int] = None,
                   finished: Optional[bool] = None) -> List[Span]:
        """Filter recorded spans; all criteria are ANDed, None means any."""
        out = []
        for span in self.spans:
            if track is not None and span.track != track:
                continue
            if category is not None and span.category != category:
                continue
            if name is not None and span.name != name:
                continue
            if run is not None and span.run != run:
                continue
            if finished is not None and span.finished != finished:
                continue
            out.append(span)
        return out

    def tracks(self) -> List[str]:
        """All track names, sorted (node-major for ``node<N>/...``)."""
        names = {s.track for s in self.spans}
        names.update(i["track"] for i in self.instants)
        return sorted(names, key=lambda t: (_track_node(t) is None,
                                            _track_node(t) or 0, t))

    def span_by_id(self, span_id: int) -> Optional[Span]:
        for span in self.spans:
            if span.id == span_id:
                return span
        return None

    def __repr__(self) -> str:
        return (f"<TelemetryCollector {len(self.spans)} spans, "
                f"{len(self.instants)} instants, {len(self.metrics)} metrics, "
                f"{len(self.runs)} runs>")


# -- ambient attachment -----------------------------------------------------

_ACTIVE: List[TelemetryCollector] = []


def attach(collector: Optional[TelemetryCollector] = None
           ) -> TelemetryCollector:
    """Make ``collector`` (or a fresh one) the ambient collector.

    Simulations started while a collector is attached record into it unless
    they were handed an explicit ``telemetry=`` collector.  Attachment
    nests: the most recently attached collector wins, and :func:`detach`
    pops it.
    """
    if collector is None:
        collector = TelemetryCollector()
    _ACTIVE.append(collector)
    return collector


def detach(collector: Optional[TelemetryCollector] = None
           ) -> Optional[TelemetryCollector]:
    """Remove the ambient collector (validating it if one is passed)."""
    if not _ACTIVE:
        return None
    if collector is not None and _ACTIVE[-1] is not collector:
        raise ValueError("detach() collector is not the active one")
    return _ACTIVE.pop()


def current_collector() -> Optional[TelemetryCollector]:
    """The ambient collector, or None (the zero-cost default)."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def telemetry_session(collector: Optional[TelemetryCollector] = None):
    """``with telemetry_session() as tel:`` -- attach for the block."""
    tel = attach(collector)
    try:
        yield tel
    finally:
        detach(tel)
