"""Telemetry exporters: Chrome trace JSON, metrics dumps, flame summary.

Three consumers, three formats:

* :func:`to_chrome_trace` -- Chrome Trace Event Format, loadable in
  ``chrome://tracing`` and https://ui.perfetto.dev.  Every span becomes a
  complete ("X") event; every instant becomes an "i" event; ``pid`` is the
  node index and ``tid`` is the track name, so Perfetto renders one process
  group per node with distinct encode/transfer/merge/decode tracks.
* :func:`to_metrics_json` / :func:`to_metrics_csv` -- flat dumps of the
  metrics registry for spreadsheets and dashboards.
* :func:`flame_summary` -- a plain-text where-did-time-go table (total and
  self time per span name within each category), the quick-look view for
  terminals.

:func:`parse_chrome_trace` inverts :func:`to_chrome_trace` far enough for
round-trip tests and downstream tooling; :func:`utilization_series` bins a
track's spans into a fraction-busy time series (the Figure 9 signal).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .core import Span, TelemetryCollector

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "parse_chrome_trace",
    "to_metrics_json",
    "to_metrics_csv",
    "flame_summary",
    "utilization_series",
]

#: Spans still open at export time get this marker attribute.
_OPEN_MARKER = "open"


def _span_record(span: Span) -> Dict[str, Any]:
    args = {"id": span.id, "run": span.run}
    if span.parent_id is not None:
        args["parent"] = span.parent_id
    for key, value in span.attrs.items():
        args[key] = value if isinstance(value, (int, float, str, bool,
                                                type(None))) else repr(value)
    if not span.finished:
        args[_OPEN_MARKER] = True
    return {
        "name": span.name,
        "cat": span.category,
        "ph": "X",
        "ts": span.start * 1e6,                    # microseconds
        "dur": max(span.duration, 1e-3) * 1e6,
        "pid": span.node if span.node is not None else 0,
        "tid": span.track,
        "args": args,
    }


def to_chrome_trace(collector: TelemetryCollector) -> str:
    """Serialize all runs in ``collector`` to Chrome Trace Event JSON."""
    records: List[Dict[str, Any]] = [_span_record(s) for s in collector.spans]
    for inst in collector.instants:
        node = None
        if inst["track"].startswith("node"):
            head = inst["track"].split("/", 1)[0][4:]
            node = int(head) if head.isdigit() else None
        args = {"run": inst["run"]}
        args.update({k: v if isinstance(v, (int, float, str, bool, type(None)))
                     else repr(v) for k, v in inst["attrs"].items()})
        records.append({
            "name": inst["name"],
            "cat": inst["category"],
            "ph": "i",
            "s": "g",                              # global-scope instant
            "ts": inst["at"] * 1e6,
            "pid": node if node is not None else 0,
            "tid": inst["track"],
            "args": args,
        })
    records.sort(key=lambda r: (r["ts"], r["pid"], r["tid"], r["name"]))
    meta = {"runs": [{"index": r.index, "label": r.label, "offset": r.offset}
                     for r in collector.runs]}
    return json.dumps({"traceEvents": records, "displayTimeUnit": "ms",
                       "otherData": meta}, indent=1)


def write_chrome_trace(collector: TelemetryCollector, path) -> str:
    """Export to ``path``; returns the path for chaining/logging."""
    from pathlib import Path
    text = to_chrome_trace(collector)
    Path(path).write_text(text)
    return str(path)


def parse_chrome_trace(text: str) -> Dict[str, Any]:
    """Parse a :func:`to_chrome_trace` document back into plain dicts.

    Returns ``{"events": [...], "spans": [...], "instants": [...],
    "runs": [...]}`` with events in file order (which is timestamp order),
    timestamps converted back to seconds.
    """
    doc = json.loads(text)
    events = []
    for rec in doc.get("traceEvents", []):
        event = {
            "name": rec["name"],
            "category": rec.get("cat", ""),
            "phase": rec["ph"],
            "start": rec["ts"] / 1e6,
            "duration": rec.get("dur", 0.0) / 1e6,
            "node": rec.get("pid", 0),
            "track": rec.get("tid", ""),
            "args": rec.get("args", {}),
        }
        events.append(event)
    return {
        "events": events,
        "spans": [e for e in events if e["phase"] == "X"],
        "instants": [e for e in events if e["phase"] == "i"],
        "runs": doc.get("otherData", {}).get("runs", []),
    }


# -- metrics ----------------------------------------------------------------

def to_metrics_json(collector: TelemetryCollector) -> str:
    """The metrics registry as a JSON array of flat records."""
    return json.dumps(collector.metrics.snapshot(), indent=1)


def to_metrics_csv(collector: TelemetryCollector) -> str:
    """The metrics registry as CSV: kind,name,labels,value,count,sum,min,max."""
    lines = ["kind,name,labels,value,count,sum,min,max"]
    for row in collector.metrics.snapshot():
        labels = ";".join(f"{k}={v}" for k, v in sorted(row["labels"].items()))
        if row["kind"] == "histogram":
            cells = ["", str(row["count"]), repr(row["sum"]),
                     repr(row["min"]), repr(row["max"])]
        else:
            value = row["value"]
            cells = ["" if value is None else repr(value), "", "", "", ""]
        lines.append(",".join([row["kind"], row["name"], labels] + cells))
    return "\n".join(lines) + "\n"


# -- flame summary ----------------------------------------------------------

def flame_summary(collector: TelemetryCollector, top: int = 30) -> str:
    """Plain-text time breakdown: total and self time per (category, name).

    *Self* time excludes time attributed to child spans, so a task whose
    whole duration is one GPU kernel shows ~zero self time and the kernel
    shows the real cost -- the usual flame-graph reading.
    """
    child_time: Dict[int, float] = {}
    for span in collector.spans:
        if span.parent_id is not None and span.finished:
            child_time[span.parent_id] = (child_time.get(span.parent_id, 0.0)
                                          + span.duration)
    agg: Dict[tuple, List[float]] = {}   # (category, name) -> [count, total, self]
    for span in collector.spans:
        if not span.finished:
            continue
        key = (span.category, span.name.split(":", 1)[0])
        row = agg.setdefault(key, [0, 0.0, 0.0])
        row[0] += 1
        row[1] += span.duration
        row[2] += max(0.0, span.duration - child_time.get(span.id, 0.0))
    rows = sorted(agg.items(), key=lambda kv: -kv[1][2])[:top]
    if not rows:
        return "flame summary: no finished spans recorded"
    name_w = max(len(f"{cat}/{name}") for (cat, name), _ in rows)
    lines = [f"{'span':<{name_w}}  {'count':>7}  {'total_s':>12}  "
             f"{'self_s':>12}"]
    lines.append("-" * len(lines[0]))
    for (cat, name), (count, total, self_time) in rows:
        lines.append(f"{cat + '/' + name:<{name_w}}  {count:>7d}  "
                     f"{total:>12.6f}  {self_time:>12.6f}")
    return "\n".join(lines)


# -- utilization ------------------------------------------------------------

def utilization_series(collector: TelemetryCollector, track: str,
                       bin_width: float, horizon: float,
                       run: Optional[int] = None,
                       name: Optional[str] = None) -> List[float]:
    """Fraction-busy per time bin over ``[0, horizon)`` for one track.

    ``run`` selects which recorded simulation to read (default: the last
    one); its time offset is subtracted, so the series always starts at
    the run's own t=0.  This is the telemetry-native replacement for the
    GPU model's bespoke interval-log binning: Figure 9's utilization
    timelines come straight from the recorded kernel spans.
    """
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    if run is None:
        run = max(0, len(collector.runs) - 1)
    offset = collector.runs[run].offset if run < len(collector.runs) else 0.0
    nbins = max(1, int(round(horizon / bin_width)))
    bins = [0.0] * nbins
    for span in collector.find_spans(track=track, run=run, finished=True,
                                     name=name):
        start = span.start - offset
        end = span.end - offset
        first = max(0, int(start / bin_width))
        last = min(nbins - 1, int(end / bin_width))
        for b in range(first, last + 1):
            lo = max(start, b * bin_width)
            hi = min(end, (b + 1) * bin_width)
            if hi > lo:
                bins[b] += hi - lo
    return [min(1.0, b / bin_width) for b in bins]
