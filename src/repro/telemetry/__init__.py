"""Span/metrics telemetry for the simulator, with Chrome-trace export.

See :mod:`repro.telemetry.core` for the recording model and the zero-cost
contract, :mod:`repro.telemetry.export` for the output formats, and
``docs/TELEMETRY.md`` for the user guide.

Import-order note: instrumented subsystems (``repro.sim``, ``repro.net``,
``repro.gpu``, ``repro.casync``) must not be imported here -- they reach
telemetry only through ``env.telemetry``, never by importing this package,
so this package stays dependency-free and cycle-free.
"""

from .core import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RunInfo,
    Span,
    TelemetryCollector,
    attach,
    current_collector,
    detach,
    telemetry_session,
)
from .export import (
    flame_summary,
    parse_chrome_trace,
    to_chrome_trace,
    to_metrics_csv,
    to_metrics_json,
    utilization_series,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunInfo",
    "Span",
    "TelemetryCollector",
    "attach",
    "current_collector",
    "detach",
    "flame_summary",
    "parse_chrome_trace",
    "telemetry_session",
    "to_chrome_trace",
    "to_metrics_csv",
    "to_metrics_json",
    "utilization_series",
    "write_chrome_trace",
]
