"""DNN-system integration adapters (MXNet / TensorFlow / PyTorch flavoured)."""

from .adapters import (
    FrameworkAdapter,
    MXNetAdapter,
    PyTorchAdapter,
    SessionHandle,
    TensorFlowAdapter,
    get_adapter,
)

__all__ = [
    "FrameworkAdapter",
    "MXNetAdapter",
    "PyTorchAdapter",
    "SessionHandle",
    "TensorFlowAdapter",
    "get_adapter",
]
