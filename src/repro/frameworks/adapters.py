"""DNN-system integration adapters (§5 "DNN systems integration").

HiPress integrates with MXNet, TensorFlow and PyTorch through thin
adapters that (1) wrap encode/decode so they can reach gradients in the
training context, (2) instrument the training script with CaSync calls,
and (3) provide a task queue plus a dedicated scheduler thread for
engines that need one (MXNet/TensorFlow have an execution engine to hook;
"PyTorch does not have such an execution engine, thus we implement one").

Each adapter exposes the same surface:

* ``name`` / ``has_execution_engine`` -- what we are integrating with;
* ``wrap(job)`` -- returns a :class:`SessionHandle` whose ``run_iteration``
  drives the simulated engine exactly the way that framework schedules
  encode/decode (through its engine queue, or through the adapter-owned
  one for PyTorch);
* ``instrument(script)`` -- the §5 "adaptor" that rewrites a training
  script's synchronization calls to CaSync (string-level here, faithful
  to what the real adaptors do to Python training scripts).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..hipress import TrainingJob
from ..training import IterationResult

__all__ = ["SessionHandle", "FrameworkAdapter", "MXNetAdapter",
           "TensorFlowAdapter", "PyTorchAdapter", "get_adapter"]


@dataclass
class SessionHandle:
    """A framework-flavoured handle on a running HiPress job."""

    framework: str
    job: TrainingJob
    engine_queue: List[str] = field(default_factory=list)
    iterations_run: int = 0
    last_result: Optional[IterationResult] = None

    def run_iteration(self) -> IterationResult:
        # The dedicated scheduler thread drains encode/decode operators
        # through the engine's task queue; here that queue records which
        # operators the iteration scheduled (for inspection/testing).
        plans = self.job.plans
        self.engine_queue.clear()
        for name, plan in plans.items():
            if plan.compress:
                self.engine_queue.append(f"encode:{name}")
                self.engine_queue.append(f"decode:{name}")
        self.last_result = self.job.run()
        self.iterations_run += 1
        return self.last_result


class FrameworkAdapter:
    """Base integration adapter."""

    name = "framework"
    #: Whether the engine has its own operator scheduler to hook into.
    has_execution_engine = True
    #: The synchronization call the adaptor rewrites in training scripts.
    _sync_pattern = re.compile(r"allreduce\(([^)]*)\)")

    def wrap(self, job: TrainingJob) -> SessionHandle:
        return SessionHandle(framework=self.name, job=job)

    def instrument(self, script: str) -> str:
        """Rewrite a training script's gradient sync to CaSync calls."""
        return self._sync_pattern.sub(
            r"casync.synchronize(\1, compression=True)", script)


class MXNetAdapter(FrameworkAdapter):
    """MXNet: hook the KVStore path through the engine's task queue."""

    name = "mxnet"
    has_execution_engine = True
    _sync_pattern = re.compile(r"kvstore\.push_pull\(([^)]*)\)")


class TensorFlowAdapter(FrameworkAdapter):
    """TensorFlow: hook the Horovod DistributedOptimizer path."""

    name = "tensorflow"
    has_execution_engine = True
    _sync_pattern = re.compile(r"hvd\.allreduce\(([^)]*)\)")


class PyTorchAdapter(FrameworkAdapter):
    """PyTorch: no engine to hook, so HiPress brings its own (§5)."""

    name = "pytorch"
    has_execution_engine = False
    _sync_pattern = re.compile(r"dist\.all_reduce\(([^)]*)\)")


_ADAPTERS: Dict[str, FrameworkAdapter] = {
    "mxnet": MXNetAdapter(),
    "tensorflow": TensorFlowAdapter(),
    "pytorch": PyTorchAdapter(),
}


def get_adapter(framework: str) -> FrameworkAdapter:
    try:
        return _ADAPTERS[framework]
    except KeyError:
        raise KeyError(
            f"unknown framework {framework!r}; "
            f"available: {sorted(_ADAPTERS)}") from None
