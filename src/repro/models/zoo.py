"""Model zoo: the eight DNNs of Table 6 as gradient-level workload specs.

The synchronization substrate does not need real weights -- it needs each
model's *gradient signature*: how many gradient tensors, their sizes, the
order and timing with which backward produces them, and how long one
iteration of single-GPU compute takes.  Table 6 pins the totals (total
size, max gradient, gradient count); the per-layer distribution is
generated deterministically to match those totals, with a bimodal shape
(many small bias/LayerNorm tensors plus a few big weight matrices) that
mirrors real models -- the paper leans on this shape, e.g. "62.7% of
Bert-base's gradients are below 16KB" (§6.3).

Single-GPU iteration times are calibrated to public V100 fp32 throughput
figures for each model at the paper's batch sizes and scale with the GPU's
relative fp32 rate for other GPUs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..gpu import GpuSpec, V100

__all__ = ["GradientSpec", "ModelSpec", "MB", "get_model", "all_models",
           "MODEL_NAMES"]

MB = 1024 * 1024


@dataclass(frozen=True)
class GradientSpec:
    """One gradient tensor: a name and its fp32 size in bytes."""

    name: str
    nbytes: int

    @property
    def num_elements(self) -> int:
        return self.nbytes // 4


@dataclass(frozen=True)
class ModelSpec:
    """A DNN training workload from the synchronization layer's viewpoint.

    gradients are listed in *backward order* (last layer first), which is
    the order synchronization can start on them.
    """

    name: str
    gradients: Tuple[GradientSpec, ...]
    batch_size: int
    batch_unit: str           # "images", "sequences", "tokens"
    v100_iteration_s: float   # single-GPU fwd+bwd time on a V100, fp32
    forward_fraction: float = 0.33
    framework: str = "mxnet"  # the engine the paper evaluates it on

    @property
    def total_nbytes(self) -> int:
        return sum(g.nbytes for g in self.gradients)

    @property
    def max_gradient_nbytes(self) -> int:
        return max(g.nbytes for g in self.gradients)

    @property
    def num_gradients(self) -> int:
        return len(self.gradients)

    def iteration_time(self, gpu: GpuSpec) -> float:
        """Single-GPU compute time for one iteration on ``gpu``."""
        return self.v100_iteration_s * (V100.fp32_tflops / gpu.fp32_tflops)

    def forward_time(self, gpu: GpuSpec) -> float:
        return self.iteration_time(gpu) * self.forward_fraction

    def backward_time(self, gpu: GpuSpec) -> float:
        return self.iteration_time(gpu) * (1.0 - self.forward_fraction)

    def backward_schedule(self, gpu: GpuSpec):
        """Yield (offset_into_backward_s, GradientSpec) in production order.

        Each gradient becomes available when the backward pass has spent
        compute proportional to its parameter share; the largest layers
        take the longest to differentiate.
        """
        total = self.total_nbytes
        backward = self.backward_time(gpu)
        elapsed = 0.0
        for grad in self.gradients:
            elapsed += backward * (grad.nbytes / total)
            yield (elapsed, grad)


def _layer_sizes(total_mb: float, max_mb: float, count: int,
                 small_fraction: float, seed: str) -> Tuple[int, ...]:
    """Deterministic per-layer sizes matching (total, max, count).

    One tensor is the max; a ``small_fraction`` share of the rest are tiny
    (1-64 KB, log-uniform: biases, LayerNorm gains); the remaining large
    tensors are log-spread and rescaled so everything sums to ``total``.
    """
    if count < 1:
        raise ValueError("need at least one gradient")
    # crc32, not hash(): str hashing is salted by PYTHONHASHSEED, which
    # would give every interpreter run a different layer-size draw.
    rng = np.random.default_rng(zlib.crc32(seed.encode("utf-8")))
    total = int(total_mb * MB)
    biggest = int(max_mb * MB)
    if count == 1:
        return (total,)
    remaining = count - 1
    n_small = int(round(remaining * small_fraction))
    n_large = remaining - n_small
    small = np.exp(rng.uniform(np.log(1024), np.log(15 * 1024), n_small))
    small = np.round(small).astype(np.int64)
    budget = total - biggest - int(small.sum())
    if n_large > 0:
        raw = np.exp(rng.uniform(np.log(0.02), np.log(0.9), n_large))
        raw = raw / raw.sum() * budget
        large = np.maximum(np.round(raw).astype(np.int64), 65 * 1024)
        # Cap below the declared max and rebalance the residue onto the
        # largest remaining tensor.
        large = np.minimum(large, biggest - 1)
        drift = budget - int(large.sum())
        large[np.argmax(large)] = max(65 * 1024,
                                      int(large[np.argmax(large)]) + drift)
        large[np.argmax(large)] = min(int(large[np.argmax(large)]),
                                      biggest - 1)
        sizes = np.concatenate([[biggest], large, small])
    else:
        sizes = np.concatenate([[biggest], small])
    # 4-byte align (fp32 elements).
    sizes = (np.maximum(sizes, 1024) // 4) * 4
    order = rng.permutation(len(sizes))
    return tuple(int(s) for s in sizes[order])


def _make_model(name: str, total_mb: float, max_mb: float, count: int,
                batch_size: int, batch_unit: str, v100_s: float,
                framework: str, small_fraction: float) -> ModelSpec:
    sizes = _layer_sizes(total_mb, max_mb, count, small_fraction, seed=name)
    gradients = tuple(
        GradientSpec(name=f"{name}.g{i:03d}", nbytes=size)
        for i, size in enumerate(sizes))
    return ModelSpec(name=name, gradients=gradients, batch_size=batch_size,
                     batch_unit=batch_unit, v100_iteration_s=v100_s,
                     framework=framework)


# Table 6 statistics + §6.1 batch sizes; iteration times calibrated to
# public V100 fp32 throughput at those batch sizes.
_CATALOG: Dict[str, ModelSpec] = {}

for _spec in (
    # name            total_mb  max_mb   #g  batch  unit       v100_s  fw         small%
    ("vgg19",          548.05,  392.00,  38,  32, "images",     0.190, "mxnet",      0.45),
    ("resnet50",        97.46,    9.00, 155,  64, "images",     0.175, "tensorflow", 0.50),
    ("ugatit",        2558.75, 1024.00, 148,   2, "images",     0.620, "pytorch",    0.35),
    ("ugatit-light",   511.25,  128.00, 148,   2, "images",     0.170, "pytorch",    0.35),
    ("bert-base",      420.02,   89.42, 207,  32, "sequences",  0.210, "mxnet",      0.62),
    ("bert-large",    1282.60,  119.23, 399,  32, "sequences",  0.500, "mxnet",      0.60),
    ("lstm",           327.97,  190.42,  10,  80, "sequences",  0.085, "pytorch",    0.20),
    ("transformer",    234.08,   65.84, 185, 2048, "tokens",    0.055, "tensorflow", 0.55),
):
    _name, _total, _max, _count, _batch, _unit, _v100, _fw, _small = _spec
    _CATALOG[_name] = _make_model(_name, _total, _max, _count, _batch,
                                  _unit, _v100, _fw, _small)

MODEL_NAMES = tuple(sorted(_CATALOG))


def get_model(name: str) -> ModelSpec:
    """Look up a Table 6 model by name."""
    try:
        return _CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(_CATALOG)}"
        ) from None


def all_models() -> Tuple[ModelSpec, ...]:
    return tuple(_CATALOG[n] for n in MODEL_NAMES)
