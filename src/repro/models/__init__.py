"""Model zoo: Table 6 workloads as gradient-level specs."""

from .zoo import (
    MB,
    MODEL_NAMES,
    GradientSpec,
    ModelSpec,
    all_models,
    get_model,
)

__all__ = ["MB", "MODEL_NAMES", "GradientSpec", "ModelSpec", "all_models",
           "get_model"]
