"""Shared-resource primitives for the simulation kernel.

Three resource flavours cover everything this repository needs:

* :class:`Resource` -- a counted semaphore (GPU streams, link directions,
  PCIe lanes).  Processes ``yield resource.request()`` and must call
  ``resource.release(req)`` when done (or use :meth:`Resource.acquire` as a
  context-manager-like pair).
* :class:`Store` -- an unbounded FIFO of Python objects (task queues,
  mailboxes).  ``yield store.get()`` blocks until an item is available.
* :class:`Channel` -- a Store with an optional delivery delay, modelling an
  in-order message pipe between two simulated entities.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .core import Environment, Event, SimulationError, URGENT

__all__ = ["Resource", "Request", "Store", "Channel"]


class Request(Event):
    """A pending claim on a :class:`Resource`; fires when granted."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """A counted resource with FIFO granting.

    ``capacity`` concurrent holders are allowed; further requests queue in
    arrival order, which keeps simulations deterministic.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiting: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of holders right now."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self) -> Request:
        req = Request(self)
        tel = self.env.telemetry
        if tel is not None:
            tel.metrics.counter("sim.resource.requests").inc()
            if self._in_use >= self.capacity:
                tel.metrics.counter("sim.resource.queued").inc()
        if self._in_use < self.capacity:
            self._in_use += 1
            req.succeed(priority=URGENT)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        if request.resource is not self:
            raise SimulationError("release() with a foreign request")
        if self._waiting:
            nxt = self._waiting.popleft()
            nxt.succeed(priority=URGENT)
        else:
            self._in_use -= 1
            if self._in_use < 0:
                raise SimulationError("release() without a matching request")

    def cancel(self, request: Request) -> None:
        """Withdraw a claim, e.g. when the requester is interrupted.

        A still-queued request is removed (and defused: its grant will
        never be consumed); a granted one is released.  Safe to call
        exactly once per request in an interrupt handler.
        """
        if request.resource is not self:
            raise SimulationError("cancel() with a foreign request")
        if request.triggered:
            self.release(request)
        else:
            try:
                self._waiting.remove(request)
            except ValueError:
                pass
            request.defuse()

    def acquire(self):
        """Generator helper: ``req = yield from resource.acquire()``."""
        req = self.request()
        yield req
        return req


class StoreGet(Event):
    __slots__ = ()


class Store:
    """Unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks.  Pending getters are served in FIFO order.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        return tuple(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item, priority=URGENT)
        else:
            self._items.append(item)

    def get(self) -> StoreGet:
        ev = StoreGet(self.env)
        if self._items:
            ev.succeed(self._items.popleft(), priority=URGENT)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; returns None when empty."""
        if self._items:
            return self._items.popleft()
        return None


class Channel(Store):
    """A Store whose ``send`` delivers after a fixed delay, preserving order."""

    def __init__(self, env: Environment, delay: float = 0.0):
        super().__init__(env)
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.delay = delay
        self._last_delivery = env.now

    def send(self, item: Any) -> None:
        """Deliver ``item`` after ``delay``, never reordering messages."""
        if self.delay == 0.0:
            self.put(item)
            return
        deliver_at = max(self.env.now + self.delay, self._last_delivery)
        self._last_delivery = deliver_at

        def _deliver(env=self.env, item=item, when=deliver_at):
            yield env.timeout(when - env.now)
            self.put(item)

        self.env.process(_deliver(), name="channel-delivery")
