"""Discrete-event simulation kernel.

A minimal, deterministic, generator-based discrete-event simulator in the
style of SimPy.  Every timed behaviour in this repository -- network
transfers, GPU kernels, synchronization protocols -- is expressed as a
*process*: a Python generator that yields :class:`Event` objects and is
resumed when they fire.

Determinism matters for a systems simulator: two events scheduled for the
same instant are ordered by (priority, insertion sequence), so repeated runs
of the same workload produce identical traces.

The execution machinery behind that contract is selectable through
:class:`SimEngine` (see ``docs/SIM_CORE.md``): the tuned default runs a
slotted calendar queue with pooled kernel-internal events, while
``SimEngine(queue="heap")`` preserves the original flat-heap engine as a
differential oracle -- both produce bit-identical event orderings, which
the equivalence battery in ``tests/test_engine_equivalence.py`` locks in.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, List, Optional

from .queues import HeapQueue, SlottedQueue

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "SimEngine",
    "DEFAULT_ENGINE",
    "HEAP_ENGINE",
    "default_engine",
    "set_default_engine",
    "use_engine",
    "NORMAL",
    "URGENT",
]

#: Default scheduling priority for events.
NORMAL = 1
#: Priority for bookkeeping events that must run before normal ones at the
#: same timestamp (e.g. resource releases).
URGENT = 0

#: Upper bound on recycled carrier events kept per environment.
_POOL_LIMIT = 4096


@dataclass(frozen=True)
class SimEngine:
    """Execution-machinery knobs for an :class:`Environment`.

    Every combination implements the identical simulation semantics (the
    (time, priority, sequence) total order); the knobs only select *how*
    that order is produced:

    queue: ``"slotted"`` (calendar queue, O(1) common-case insert) or
        ``"heap"`` (the original flat binary heap, kept as the
        differential oracle).
    pool_events: recycle kernel-internal carrier events (process
        initializers, immediate resumes, inline-send hops) through a
        free list instead of allocating fresh ones.  User-visible events
        (timeouts, conditions, task completions) are never pooled.
    inline_sends: let :class:`~repro.casync.tasks.NodeEngine` execute
        pristine-path send tasks as direct event hops instead of spawning
        a generator process per message.
    vector_bulk: let the bulk coordinator and
        :meth:`~repro.net.fabric.Fabric.bulk_transfer` compute a whole
        batch of transfers in one vectorized pass.
    """

    queue: str = "slotted"
    pool_events: bool = True
    inline_sends: bool = True
    vector_bulk: bool = True

    def __post_init__(self):
        if self.queue not in ("slotted", "heap"):
            raise ValueError(
                f"unknown queue kind {self.queue!r}; use 'slotted' or 'heap'")


#: The tuned engine every :class:`Environment` uses by default.
DEFAULT_ENGINE = SimEngine()
#: The pre-refactor engine: flat heap, no pooling, no fast paths.  The
#: equivalence battery runs every configuration on both engines.
HEAP_ENGINE = SimEngine(queue="heap", pool_events=False,
                        inline_sends=False, vector_bulk=False)

_default_engine = DEFAULT_ENGINE


def default_engine() -> SimEngine:
    """The engine newly constructed environments will use."""
    return _default_engine


def set_default_engine(engine: SimEngine) -> SimEngine:
    """Swap the process-wide default engine; returns the previous one."""
    global _default_engine
    previous = _default_engine
    _default_engine = engine
    return previous


@contextmanager
def use_engine(engine: SimEngine):
    """Scope the default engine, e.g. to run a whole simulation (including
    internally constructed environments) on the heap oracle::

        with use_engine(HEAP_ENGINE):
            trace = trace_iteration(...)
    """
    previous = set_default_engine(engine)
    try:
        yield engine
    finally:
        set_default_engine(previous)


class SimulationError(Exception):
    """Raised for structural misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """An occurrence at a point in simulated time.

    Events start *pending*; :meth:`succeed` or :meth:`fail` schedules them on
    the environment's agenda.  Once processed, their callbacks run and
    waiting processes resume.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_processed",
                 "_defused", "_cancelled", "_recyclable")

    #: Sentinel meaning "no value yet".
    PENDING = object()

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = Event.PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._processed = False
        self._defused = False
        self._cancelled = False
        self._recyclable = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._scheduled

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> Optional[bool]:
        return self._ok

    @property
    def cancelled(self) -> bool:
        """True if the event was removed from the agenda before firing."""
        return self._cancelled

    @property
    def defused(self) -> bool:
        """True if a failure of this event should not crash the simulation.

        Set when the only waiter was detached (e.g. by an
        :class:`Interrupt`), so the event's exception has no consumer left
        by design rather than by accident.
        """
        return self._defused

    def defuse(self) -> "Event":
        """Mark this event's (potential) failure as deliberately unobserved."""
        self._defused = True
        return self

    def cancel(self) -> "Event":
        """Remove this scheduled event from the agenda (see
        :meth:`Environment.cancel`)."""
        self.env.cancel(self)
        return self

    @property
    def value(self) -> Any:
        if self._value is Event.PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Schedule this event to fire successfully with ``value``."""
        if self._scheduled:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Schedule this event to fire with an exception."""
        if self._scheduled:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=priority)
        return self

    def __repr__(self) -> str:
        state = "processed" if self._processed else (
            "cancelled" if self._cancelled else
            "triggered" if self._scheduled else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env.schedule(self, priority=URGENT)


class Process(Event):
    """Wraps a generator; the process *is* an event that fires on return.

    The generator may ``yield`` any :class:`Event`; it is resumed with the
    event's value (or the event's exception is thrown into it).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator,
                 name: Optional[str] = None):
        if not hasattr(generator, "send"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        if env._pool_events:
            init = env._acquire_carrier(True, None)
            init.callbacks.append(self._resume)
            env.schedule(init, priority=URGENT)
        else:
            Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._value is Event.PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        event = _InterruptEvent(self.env, Interrupt(cause))
        event.callbacks.append(self._resume)
        self.env.schedule(event, priority=URGENT)

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            return
        if isinstance(event, _InterruptEvent):
            # Detach from whatever we were waiting on; a later firing of that
            # stale target must not resume us a second time.  The abandoned
            # target is also *defused*: if it later fails (e.g. an AllOf
            # whose member raises after we stopped listening), the exception
            # has deliberately lost its consumer and must not crash the
            # simulation from Environment.step.
            if self._target is not None:
                self._target._defused = True
                if self._target.callbacks is not None:
                    try:
                        self._target.callbacks.remove(self._resume)
                    except ValueError:
                        pass
        elif self._target is not None and event is not self._target:
            return  # stale wakeup
        self._target = None
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            if not self._scheduled:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            if not self._scheduled:
                self.fail(exc)
                return
            raise
        if not isinstance(next_event, Event) or next_event.env is not self.env:
            error = SimulationError(
                f"process {self.name!r} yielded {next_event!r}, which is not "
                f"an Event of this Environment")
            self._generator.close()
            self.fail(error)
            return
        self._target = next_event
        if next_event._processed:
            # Already fired: resume immediately at the current time.
            env = self.env
            if env._pool_events:
                immediate = env._acquire_carrier(next_event._ok,
                                                 next_event._value)
            else:
                immediate = Event(env)
                immediate._ok = next_event._ok
                immediate._value = next_event._value
            immediate.callbacks.append(self._resume)
            self._target = immediate
            env.schedule(immediate, priority=URGENT)
        else:
            next_event.callbacks.append(self._resume)


class _InterruptEvent(Event):
    """Carrier delivering an :class:`Interrupt` into a process."""

    __slots__ = ()

    def __init__(self, env: "Environment", interrupt: Interrupt):
        super().__init__(env)
        self._ok = False
        self._value = interrupt


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition spans multiple environments")
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev._processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict:
        return {ev: ev._value for ev in self.events if ev._processed}


class AllOf(_Condition):
    """Fires when every constituent event has fired."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._scheduled:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._results())


class AnyOf(_Condition):
    """Fires when the first constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._scheduled:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._results())


class Environment:
    """Executes events in simulated-time order.

    Usage::

        env = Environment()

        def proc(env):
            yield env.timeout(5)
            return "done"

        p = env.process(proc(env))
        env.run()
        assert env.now == 5 and p.value == "done"

    ``engine`` selects the execution machinery (queue implementation,
    event pooling, fast paths); None uses :func:`default_engine`.  All
    engines produce bit-identical event orderings.
    """

    def __init__(self, initial_time: float = 0.0,
                 engine: Optional[SimEngine] = None):
        self._now = float(initial_time)
        self.engine = engine if engine is not None else _default_engine
        self._queue = (HeapQueue() if self.engine.queue == "heap"
                       else SlottedQueue())
        self._pool_events = self.engine.pool_events
        self._pool: List[Event] = []
        #: Carrier events served from the free list (observability).
        self.pooled_reuses = 0
        #: Events removed from the agenda via :meth:`cancel`.
        self.cancellations = 0
        #: Optional :class:`~repro.telemetry.TelemetryCollector`.  None (the
        #: default) keeps every instrumentation site on the zero-cost path:
        #: one ``is not None`` test, no recording, no extra sim events.
        self.telemetry = None

    @property
    def now(self) -> float:
        return self._now

    # -- scheduling -------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL) -> None:
        event._scheduled = True
        self._queue.push(self._now + delay, priority, event)

    def cancel(self, event: Event) -> None:
        """Remove a scheduled-but-unprocessed event from the agenda.

        The event never fires: its callbacks do not run and it does not
        advance the clock.  Cancelling an unscheduled or already-processed
        event is a no-op.  Physical removal is lazy -- the queue skips
        tombstones at pop time and compacts once they outnumber live
        events -- so heavy cancel churn (retry timers, straggler
        timeouts) cannot grow the agenda without bound.
        """
        if not event._scheduled or event._processed or event._cancelled:
            return
        event._cancelled = True
        self.cancellations += 1
        queue = self._queue
        before = queue.compactions
        queue.note_cancel()
        tel = self.telemetry
        if tel is not None:
            tel.metrics.counter("sim.events_cancelled").inc()
            if queue.compactions != before:
                tel.metrics.counter("sim.queue_compactions").inc()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue.peek_time()

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no more events")
        self._now, event = self._queue.pop()
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        for callback in callbacks:
            callback(event)
        if (not event._ok and not callbacks and not event._defused
                and not isinstance(event, Process)):
            raise event._value
        if event._recyclable:
            self._release_carrier(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the agenda is empty or simulated time reaches ``until``."""
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        while self._queue:
            if until is not None and self._queue.peek_time() > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until

    def run_until_complete(self, process: Process) -> Any:
        """Run until ``process`` terminates; return its value or re-raise."""
        while process.is_alive:
            if not self._queue:
                raise SimulationError(
                    f"deadlock: {process.name!r} is waiting but no events remain")
            self.step()
        if process._ok:
            return process._value
        raise process._value

    # -- carrier pooling --------------------------------------------------

    def _acquire_carrier(self, ok: Optional[bool], value: Any) -> Event:
        """A kernel-owned single-shot event, recycled after it fires.

        Only for events whose whole life cycle the kernel controls
        (process initializers, immediate resumes, inline-send hops):
        nothing may hold a reference to a carrier after its callbacks ran.

        With pooling disabled the carrier is a plain one-shot event, so
        every ``SimEngine`` combination keeps identical visible semantics.
        """
        if not self._pool_events:
            event = Event(self)
            event._ok = ok
            event._value = value
            return event
        pool = self._pool
        if pool:
            event = pool.pop()
            self.pooled_reuses += 1
        else:
            event = Event(self)
            event._recyclable = True
        event._ok = ok
        event._value = value
        return event

    def _release_carrier(self, event: Event) -> None:
        if len(self._pool) >= _POOL_LIMIT:
            return
        event.callbacks = []
        event._value = Event.PENDING
        event._ok = None
        event._scheduled = False
        event._processed = False
        event._defused = False
        event._cancelled = False
        self._pool.append(event)

    # -- factories --------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        proc = Process(self, generator, name=name)
        tel = self.telemetry
        if tel is not None:
            # Process lifecycle as a span.  The completion callback only
            # records; it schedules nothing, so the event sequence is
            # identical with or without a collector attached.
            span = tel.begin(proc.name, category="process",
                             track="sim/processes", at=self._now)
            tel.metrics.counter("sim.processes").inc()

            def _ended(event, tel=tel, span=span):
                tel.finish(span, self._now, ok=bool(event._ok))

            proc.callbacks.append(_ended)
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)
