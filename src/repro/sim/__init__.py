"""Deterministic discrete-event simulation kernel (SimPy-flavoured).

This package is the timing substrate for the whole reproduction: network
transfers, GPU kernels, and synchronization protocols are all simulated
processes scheduled by :class:`Environment`.
"""

from .core import (
    AllOf,
    AnyOf,
    DEFAULT_ENGINE,
    Environment,
    Event,
    HEAP_ENGINE,
    Interrupt,
    Process,
    SimEngine,
    SimulationError,
    Timeout,
    default_engine,
    set_default_engine,
    use_engine,
    NORMAL,
    URGENT,
)
from .queues import HeapQueue, SlottedQueue
from .resources import Channel, Request, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "DEFAULT_ENGINE",
    "Environment",
    "Event",
    "HEAP_ENGINE",
    "HeapQueue",
    "Interrupt",
    "Process",
    "Request",
    "Resource",
    "SimEngine",
    "SimulationError",
    "SlottedQueue",
    "Store",
    "Timeout",
    "default_engine",
    "set_default_engine",
    "use_engine",
    "NORMAL",
    "URGENT",
]
