"""Deterministic discrete-event simulation kernel (SimPy-flavoured).

This package is the timing substrate for the whole reproduction: network
transfers, GPU kernels, and synchronization protocols are all simulated
processes scheduled by :class:`Environment`.
"""

from .core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    NORMAL,
    URGENT,
)
from .resources import Channel, Request, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Request",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
    "NORMAL",
    "URGENT",
]
