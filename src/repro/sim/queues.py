"""Event-queue implementations backing :class:`~repro.sim.core.Environment`.

Two interchangeable agendas implement the same total order over scheduled
events -- ``(time, priority, insertion sequence)``:

* :class:`HeapQueue` -- the original flat binary heap.  Every push/pop is
  O(log n) on one list of ``(time, priority, seq, event)`` tuples.  Kept
  as the differential oracle: ``SimEngine(queue="heap")`` runs every
  simulation through it, and the equivalence battery asserts bit-identical
  traces against the slotted engine.
* :class:`SlottedQueue` -- a calendar-style queue keyed on the *distinct*
  ``(time, priority)`` instants.  Discrete-event workloads in this
  repository are heavily co-scheduled (a bulk flush completes hundreds of
  tasks at one instant; a backward pass releases a layer's worth of work
  at once), so the number of distinct keys is far smaller than the number
  of events.  Each key holds a FIFO slot (a deque -- append order *is*
  sequence order), and only slot creation/exhaustion touches the key
  heap: the common-case insert is one dict probe plus one append, O(1).

Cancellation is lazy on both queues: :meth:`~repro.sim.core.Environment.
cancel` only flags the event, and the queues skip flagged entries at pop
time.  To bound growth under cancel churn (straggler/timeout workloads
create one dead timer per retry attempt), every queue counts tombstones
and compacts -- physically removing dead entries -- once they outnumber
the live events (and exceed :data:`COMPACT_MIN_TOMBSTONES`, so tiny
queues never bother).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import List, Tuple

__all__ = ["COMPACT_MIN_TOMBSTONES", "HeapQueue", "SlottedQueue"]

#: Compaction is considered only once this many cancelled entries have
#: accumulated; below it the dead weight is cheaper than the sweep.
COMPACT_MIN_TOMBSTONES = 64


class _EventQueue:
    """Shared live/tombstone bookkeeping for both agenda implementations."""

    __slots__ = ("_live", "_tombstones", "compactions")

    def __init__(self):
        self._live = 0
        self._tombstones = 0
        #: Number of compaction sweeps performed (observability).
        self.compactions = 0

    def __len__(self) -> int:
        """Number of *live* (scheduled, not cancelled) events."""
        return self._live

    @property
    def tombstones(self) -> int:
        """Cancelled entries still physically present in the queue."""
        return self._tombstones

    def note_cancel(self) -> None:
        """Account for one event flagged as cancelled; maybe compact."""
        self._tombstones += 1
        self._live -= 1
        if (self._tombstones >= COMPACT_MIN_TOMBSTONES
                and self._tombstones > self._live):
            self.compact()
            self.compactions += 1

    def compact(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class HeapQueue(_EventQueue):
    """The flat binary-heap agenda (the pre-refactor behaviour)."""

    __slots__ = ("_heap", "_seq")

    def __init__(self):
        super().__init__()
        self._heap: List[tuple] = []
        self._seq = 0

    def push(self, time: float, priority: int, event) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, priority, self._seq, event))
        self._live += 1

    def pop(self) -> Tuple[float, object]:
        heap = self._heap
        while True:
            time, _, _, event = heapq.heappop(heap)
            if event._cancelled:
                self._tombstones -= 1
                continue
            self._live -= 1
            return time, event

    def peek_time(self) -> float:
        heap = self._heap
        while heap:
            head = heap[0]
            if head[3]._cancelled:
                heapq.heappop(heap)
                self._tombstones -= 1
                continue
            return head[0]
        return float("inf")

    def compact(self) -> None:
        self._heap = [entry for entry in self._heap
                      if not entry[3]._cancelled]
        heapq.heapify(self._heap)
        self._tombstones = 0


class SlottedQueue(_EventQueue):
    """Calendar queue over distinct ``(time, priority)`` slots.

    The slot deque preserves insertion order, which is exactly the
    sequence-number tie-break of :class:`HeapQueue`; the key heap orders
    the slots.  Pushing into an existing slot never touches the heap.
    """

    __slots__ = ("_slots", "_keys")

    def __init__(self):
        super().__init__()
        self._slots = {}
        self._keys: List[Tuple[float, int]] = []

    def push(self, time: float, priority: int, event) -> None:
        key = (time, priority)
        slot = self._slots.get(key)
        if slot is None:
            self._slots[key] = deque((event,))
            heapq.heappush(self._keys, key)
        else:
            slot.append(event)
        self._live += 1

    def pop(self) -> Tuple[float, object]:
        keys, slots = self._keys, self._slots
        while True:
            key = keys[0]
            slot = slots[key]
            event = slot.popleft()
            if not slot:
                del slots[key]
                heapq.heappop(keys)
            if event._cancelled:
                self._tombstones -= 1
                continue
            self._live -= 1
            return key[0], event

    def peek_time(self) -> float:
        keys, slots = self._keys, self._slots
        while keys:
            key = keys[0]
            slot = slots[key]
            while slot and slot[0]._cancelled:
                slot.popleft()
                self._tombstones -= 1
            if not slot:
                del slots[key]
                heapq.heappop(keys)
                continue
            return key[0]
        return float("inf")

    def compact(self) -> None:
        slots = self._slots
        for key in list(slots):
            live = deque(ev for ev in slots[key] if not ev._cancelled)
            if live:
                slots[key] = live
            else:
                del slots[key]
        self._keys = [key for key in self._keys if key in slots]
        heapq.heapify(self._keys)
        self._tombstones = 0
