"""Experiment drivers regenerating every table and figure of the paper.

Each module exposes a ``jobs(...)`` manifest of independent
:class:`~repro.experiments.common.JobSpec` units, ``run_job(...)``
(computes one unit's JSON payload), ``assemble(payloads, ...)`` (folds
payloads into result objects), plus ``run(...)`` (the serial
composition of the three) and ``render(results)`` (the printable
paper-vs-measured comparison).  :mod:`repro.experiments.runner`
executes the manifests in parallel with content-addressed result
caching, bit-identical to the serial path.  The corresponding
benchmarks in ``benchmarks/`` call these and print the rendered output.
"""

from . import (
    adaptive,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    kernel_speed,
    table1,
    table5,
    table6,
    table7,
)
from .common import (JobSpec, SYSTEMS, default_algorithm, execute_job,
                     execute_serial, format_table, run_system)
from .runner import (ArtifactPlan, ExperimentRunner, JobFailure, ResultCache,
                     RunJournal, RunReport, artifact_plans, job_digest,
                     run_artifacts)
from .throughput import ThroughputSweep, render_sweep, sweep

__all__ = [
    "ArtifactPlan",
    "ExperimentRunner",
    "JobFailure",
    "JobSpec",
    "ResultCache",
    "RunJournal",
    "RunReport",
    "SYSTEMS",
    "ThroughputSweep",
    "artifact_plans",
    "default_algorithm",
    "execute_job",
    "execute_serial",
    "job_digest",
    "run_artifacts",
    "adaptive",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig7",
    "fig8",
    "fig9",
    "format_table",
    "kernel_speed",
    "render_sweep",
    "run_system",
    "sweep",
    "table1",
    "table5",
    "table6",
    "table7",
]
