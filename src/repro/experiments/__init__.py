"""Experiment drivers regenerating every table and figure of the paper.

Each module exposes ``run(...)`` (returns structured results) and
``render(results)`` (returns the printable paper-vs-measured comparison).
The corresponding benchmarks in ``benchmarks/`` call these and print the
rendered output.
"""

from . import (
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    kernel_speed,
    table1,
    table5,
    table6,
    table7,
)
from .common import SYSTEMS, default_algorithm, format_table, run_system
from .throughput import ThroughputSweep, render_sweep, sweep

__all__ = [
    "SYSTEMS",
    "ThroughputSweep",
    "default_algorithm",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig7",
    "fig8",
    "fig9",
    "format_table",
    "kernel_speed",
    "render_sweep",
    "run_system",
    "sweep",
    "table1",
    "table5",
    "table6",
    "table7",
]
