"""Table 5: implementation/integration cost of CompLL-based algorithms.

Counts our real DSL sources the way the paper counts theirs: lines of
algorithm logic (encode/decode), lines of user-defined functions, number
of distinct common operators, and integration lines (always 0 -- CompLL
integrates generated code automatically).  Paper OSS and CompLL numbers
are embedded for side-by-side comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..compll import dsl_source, loc_stats
from .common import JobSpec, execute_serial, format_table

__all__ = ["PAPER", "jobs", "run", "run_job", "assemble", "render"]

#: Paper Table 5: algorithm -> (oss_logic, oss_integration,
#:                              compll_logic, compll_udf, compll_ops).
PAPER: Dict[str, Tuple[Optional[int], Optional[int], int, int, int]] = {
    "onebit": (80, 445, 21, 9, 4),
    "tbq": (100, 384, 13, 18, 3),
    "terngrad": (170, 513, 23, 7, 5),
    "dgc": (1298, 1869, 29, 15, 6),
    "graddrop": (None, None, 29, 21, 6),
}


@dataclass(frozen=True)
class Table5Row:
    algorithm: str
    logic_lines: int
    udf_lines: int
    operators: int
    integration_lines: int
    paper_logic: int
    paper_udf: int
    paper_operators: int
    paper_oss_logic: Optional[int]
    paper_oss_integration: Optional[int]


def jobs() -> List[JobSpec]:
    """One job per DSL algorithm whose source we count."""
    return [
        JobSpec(artifact="table5", job_id=f"table5/{name}",
                module=__name__, params={"algorithm": name})
        for name in PAPER
    ]


def run_job(algorithm: str) -> Dict:
    stats = loc_stats(dsl_source(algorithm))
    return {"logic_lines": stats.logic_lines,
            "udf_lines": stats.udf_lines,
            "operators": stats.operators_used,
            "integration_lines": stats.integration_lines}


def assemble(payloads: Mapping[str, Dict]) -> List[Table5Row]:
    rows = []
    for spec in jobs():
        name = spec.params["algorithm"]
        oss_logic, oss_integ, p_logic, p_udf, p_ops = PAPER[name]
        stats = payloads[spec.job_id]
        rows.append(Table5Row(
            algorithm=name,
            logic_lines=stats["logic_lines"],
            udf_lines=stats["udf_lines"],
            operators=stats["operators"],
            integration_lines=stats["integration_lines"],
            paper_logic=p_logic, paper_udf=p_udf, paper_operators=p_ops,
            paper_oss_logic=oss_logic, paper_oss_integration=oss_integ))
    return rows


def run() -> List[Table5Row]:
    return assemble(execute_serial(jobs()))


def render(rows: List[Table5Row]) -> str:
    table = format_table(
        ["algorithm", "OSS logic (paper)", "OSS integ (paper)",
         "logic paper/ours", "udf paper/ours", "#ops paper/ours",
         "integration (ours)"],
        [[r.algorithm,
          r.paper_oss_logic if r.paper_oss_logic is not None else "N/A",
          (r.paper_oss_integration
           if r.paper_oss_integration is not None else "N/A"),
          f"{r.paper_logic}/{r.logic_lines}",
          f"{r.paper_udf}/{r.udf_lines}",
          f"{r.paper_operators}/{r.operators}",
          r.integration_lines] for r in rows])
    return ("Table 5 -- implementation & integration cost "
            "(lines of code)\n" + table)
