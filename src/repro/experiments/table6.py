"""Table 6: statistics of the trained models (model-zoo verification)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..models import MB, all_models, get_model
from .common import JobSpec, execute_serial, format_table

__all__ = ["PAPER", "jobs", "run", "run_job", "assemble", "render"]

#: Paper Table 6: name -> (total MB, max gradient MB, #gradients).
PAPER: Dict[str, Tuple[float, float, int]] = {
    "vgg19": (548.05, 392.0, 38),
    "resnet50": (97.46, 9.0, 155),
    "ugatit": (2558.75, 1024.0, 148),
    "ugatit-light": (511.25, 128.0, 148),
    "bert-base": (420.02, 89.42, 207),
    "bert-large": (1282.60, 119.23, 399),
    "lstm": (327.97, 190.42, 10),
    "transformer": (234.08, 65.84, 185),
}


@dataclass(frozen=True)
class Table6Row:
    model: str
    total_mb: float
    max_mb: float
    num_gradients: int
    paper_total_mb: float
    paper_max_mb: float
    paper_num_gradients: int


def jobs() -> List[JobSpec]:
    """One job per model in the zoo."""
    return [
        JobSpec(artifact="table6", job_id=f"table6/{model.name}",
                module=__name__, params={"model": model.name})
        for model in all_models()
    ]


def run_job(model: str) -> Dict:
    spec = get_model(model)
    return {"total_mb": spec.total_nbytes / MB,
            "max_mb": spec.max_gradient_nbytes / MB,
            "num_gradients": spec.num_gradients}


def assemble(payloads: Mapping[str, Dict]) -> List[Table6Row]:
    rows = []
    for spec in jobs():
        name = spec.params["model"]
        p_total, p_max, p_count = PAPER[name]
        payload = payloads[spec.job_id]
        rows.append(Table6Row(
            model=name,
            total_mb=payload["total_mb"],
            max_mb=payload["max_mb"],
            num_gradients=payload["num_gradients"],
            paper_total_mb=p_total, paper_max_mb=p_max,
            paper_num_gradients=p_count))
    return rows


def run() -> List[Table6Row]:
    return assemble(execute_serial(jobs()))


def render(rows: List[Table6Row]) -> str:
    table = format_table(
        ["model", "total MB paper/ours", "max grad MB paper/ours",
         "#gradients paper/ours"],
        [[r.model,
          f"{r.paper_total_mb:.2f}/{r.total_mb:.2f}",
          f"{r.paper_max_mb:.2f}/{r.max_mb:.2f}",
          f"{r.paper_num_gradients}/{r.num_gradients}"] for r in rows])
    return "Table 6 -- statistics of trained models\n" + table
