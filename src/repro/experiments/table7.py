"""Table 7: selective compression & partitioning plans for CompLL-onebit.

For 4MB / 16MB / 392MB gradients on 4- and 16-node EC2 clusters, under
CaSync-PS and CaSync-Ring: does the planner compress, and into how many
partitions does it split?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..algorithms import OneBit
from ..casync import CostModel, SelectivePlanner
from ..cluster import ec2_v100_cluster
from ..models import MB, GradientSpec
from .common import JobSpec, execute_serial, format_table

__all__ = ["PAPER", "jobs", "run", "run_job", "assemble", "render"]

#: Paper Table 7: (strategy, nodes, size MB) -> (compress?, partitions).
PAPER: Dict[Tuple[str, int, int], Tuple[bool, int]] = {
    ("ps", 4, 4): (True, 2), ("ps", 16, 4): (True, 1),
    ("ps", 4, 16): (True, 4), ("ps", 16, 16): (True, 6),
    ("ps", 4, 392): (True, 12), ("ps", 16, 392): (True, 16),
    ("ring", 4, 4): (True, 1), ("ring", 16, 4): (False, 16),
    ("ring", 4, 16): (True, 4), ("ring", 16, 16): (True, 5),
    ("ring", 4, 392): (True, 4), ("ring", 16, 392): (True, 16),
}

SIZES_MB = (4, 16, 392)
NODE_COUNTS = (4, 16)


@dataclass(frozen=True)
class Table7Row:
    strategy: str
    nodes: int
    size_mb: int
    compress: bool
    partitions: int
    paper_compress: bool
    paper_partitions: int


PRESETS = {"ps": "ps_colocated", "ring": "ring"}


def jobs() -> List[JobSpec]:
    """One job per (strategy, cluster size, gradient size) plan query."""
    return [
        JobSpec(artifact="table7",
                job_id=f"table7/{strategy}-n{nodes}-{size_mb}mb",
                module=__name__,
                params={"strategy": strategy, "nodes": nodes,
                        "size_mb": size_mb},
                algorithm="onebit")
        for strategy in PRESETS
        for nodes in NODE_COUNTS
        for size_mb in SIZES_MB
    ]


def run_job(strategy: str, nodes: int, size_mb: int) -> Dict:
    planner = SelectivePlanner(CostModel(
        ec2_v100_cluster(nodes), OneBit(), strategy=PRESETS[strategy]))
    plan = planner.plan_gradient(GradientSpec(f"g{size_mb}", size_mb * MB))
    return {"compress": plan.compress, "partitions": plan.partitions}


def assemble(payloads: Mapping[str, Dict]) -> List[Table7Row]:
    rows = []
    for spec in jobs():
        strategy = spec.params["strategy"]
        nodes, size_mb = spec.params["nodes"], spec.params["size_mb"]
        payload = payloads[spec.job_id]
        p_compress, p_parts = PAPER[(strategy, nodes, size_mb)]
        rows.append(Table7Row(
            strategy=strategy, nodes=nodes, size_mb=size_mb,
            compress=payload["compress"], partitions=payload["partitions"],
            paper_compress=p_compress, paper_partitions=p_parts))
    return rows


def run() -> List[Table7Row]:
    return assemble(execute_serial(jobs()))


def render(rows: List[Table7Row]) -> str:
    def tup(compress, parts):
        return f"<{'yes' if compress else 'no'},{parts}>"

    table = format_table(
        ["strategy", "nodes", "gradient", "paper", "ours"],
        [[f"CaSync-{r.strategy.upper()}", r.nodes, f"{r.size_mb}MB",
          tup(r.paper_compress, r.paper_partitions),
          tup(r.compress, r.partitions)] for r in rows])
    return ("Table 7 -- compression & partitioning plans "
            "(CompLL-onebit)\n" + table)
