"""Table 7: selective compression & partitioning plans for CompLL-onebit.

For 4MB / 16MB / 392MB gradients on 4- and 16-node EC2 clusters, under
CaSync-PS and CaSync-Ring: does the planner compress, and into how many
partitions does it split?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..algorithms import OneBit
from ..casync import CostModel, SelectivePlanner
from ..cluster import ec2_v100_cluster
from ..models import MB, GradientSpec
from .common import format_table

__all__ = ["PAPER", "run", "render"]

#: Paper Table 7: (strategy, nodes, size MB) -> (compress?, partitions).
PAPER: Dict[Tuple[str, int, int], Tuple[bool, int]] = {
    ("ps", 4, 4): (True, 2), ("ps", 16, 4): (True, 1),
    ("ps", 4, 16): (True, 4), ("ps", 16, 16): (True, 6),
    ("ps", 4, 392): (True, 12), ("ps", 16, 392): (True, 16),
    ("ring", 4, 4): (True, 1), ("ring", 16, 4): (False, 16),
    ("ring", 4, 16): (True, 4), ("ring", 16, 16): (True, 5),
    ("ring", 4, 392): (True, 4), ("ring", 16, 392): (True, 16),
}

SIZES_MB = (4, 16, 392)
NODE_COUNTS = (4, 16)


@dataclass(frozen=True)
class Table7Row:
    strategy: str
    nodes: int
    size_mb: int
    compress: bool
    partitions: int
    paper_compress: bool
    paper_partitions: int


def run() -> List[Table7Row]:
    rows = []
    algorithm = OneBit()
    for strategy, preset in (("ps", "ps_colocated"), ("ring", "ring")):
        for nodes in NODE_COUNTS:
            planner = SelectivePlanner(CostModel(
                ec2_v100_cluster(nodes), algorithm, strategy=preset))
            for size_mb in SIZES_MB:
                plan = planner.plan_gradient(
                    GradientSpec(f"g{size_mb}", size_mb * MB))
                p_compress, p_parts = PAPER[(strategy, nodes, size_mb)]
                rows.append(Table7Row(
                    strategy=strategy, nodes=nodes, size_mb=size_mb,
                    compress=plan.compress, partitions=plan.partitions,
                    paper_compress=p_compress, paper_partitions=p_parts))
    return rows


def render(rows: List[Table7Row]) -> str:
    def tup(compress, parts):
        return f"<{'yes' if compress else 'no'},{parts}>"

    table = format_table(
        ["strategy", "nodes", "gradient", "paper", "ours"],
        [[f"CaSync-{r.strategy.upper()}", r.nodes, f"{r.size_mb}MB",
          tup(r.paper_compress, r.paper_partitions),
          tup(r.compress, r.partitions)] for r in rows])
    return ("Table 7 -- compression & partitioning plans "
            "(CompLL-onebit)\n" + table)
