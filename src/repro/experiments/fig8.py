"""Figure 8: throughput of NLP models on EC2 (weak scaling).

(a) Bert-large atop MXNet with onebit;
(b) Transformer atop TensorFlow with DGC;
(c) LSTM atop PyTorch with TernGrad.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from .common import JobSpec, execute_serial
from .throughput import (ThroughputSweep, assemble_sweep, render_sweep,
                         sweep_jobs)

__all__ = ["PAPER_SPEEDUPS", "jobs", "run", "assemble", "render"]

#: §6.2 headline comparisons at 128 GPUs.
PAPER_SPEEDUPS: Dict[Tuple[str, str, str], float] = {
    ("bert-large", "hipress-ps", "byteps"): 0.323,
    ("bert-large", "hipress-ps", "ring"): 0.441,
    ("bert-large", "hipress-ps", "byteps-oss"): 0.233,
    ("transformer", "hipress-ring", "ring-oss"): 0.411,
    ("transformer", "hipress-ring", "ring"): 1.014,  # "up to 101.4%"
    ("lstm", "hipress-ps", "ring"): 1.1,             # "up to 2.1x"
}

PANELS = {
    "bert-large": dict(
        systems=("byteps", "ring", "byteps-oss", "hipress-ps",
                 "hipress-ring"),
        algorithm="onebit"),
    "transformer": dict(
        systems=("byteps", "ring", "ring-oss", "hipress-ring"),
        algorithm="dgc"),
    "lstm": dict(
        systems=("byteps", "ring", "hipress-ps"),
        algorithm="terngrad"),
}


def jobs(node_counts: Sequence[int] = (1, 2, 4, 8, 16)) -> List[JobSpec]:
    """One job per (panel model, system, cluster point)."""
    specs: List[JobSpec] = []
    for model, panel in PANELS.items():
        specs.extend(sweep_jobs("fig8", model, node_counts=node_counts,
                                **panel))
    return specs


def assemble(payloads: Mapping[str, Dict],
             node_counts: Sequence[int] = (1, 2, 4, 8, 16)
             ) -> Dict[str, ThroughputSweep]:
    return {
        model: assemble_sweep(payloads, "fig8", model,
                              node_counts=node_counts, **panel)
        for model, panel in PANELS.items()
    }


def run(node_counts: Sequence[int] = (1, 2, 4, 8, 16)
        ) -> Dict[str, ThroughputSweep]:
    return assemble(execute_serial(jobs(node_counts=node_counts)),
                    node_counts=node_counts)


def render(results: Dict[str, ThroughputSweep]) -> str:
    parts = []
    for model, result in results.items():
        parts.append(render_sweep(
            result, f"Figure 8 -- {model} throughput "
                    f"({result.model}, {result.algorithm})"))
        for (m, system, baseline), paper in PAPER_SPEEDUPS.items():
            if m != model or system not in result.series \
                    or baseline not in result.series:
                continue
            ours = result.speedup(system, baseline)
            parts.append(
                f"  {system} vs {baseline} at {result.gpu_counts[-1]} GPUs: "
                f"paper=+{paper:.1%} ours=+{ours:.1%}")
    return "\n".join(parts)
