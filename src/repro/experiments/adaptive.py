"""Adaptive-vs-fixed compression policies across cluster profiles.

Not a paper artifact: this driver evaluates the PR-7 adaptive control
plane (:mod:`repro.adaptive`, ``docs/ADAPTIVE.md``).  Every
:data:`POLICIES` entry runs on every :func:`profiles` row -- the
standard EC2 testbed, the same testbed under link congestion (where
§3.3's compress-or-not tradeoffs bite hardest), and the 256-node EC2
preset -- via the multi-iteration control loop
(:func:`repro.adaptive.run_policy`), one job per (profile, policy)
point.

The headline check: on at least one profile an *adaptive* policy beats
every *fixed* one, because re-planning under the measured link bandwidth
(or mixing codecs by layer size) finds per-gradient choices a single
static codec cannot express.  ``render`` prints the per-profile ranking
and calls that comparison out.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..adaptive import run_policy
from ..cluster import get_cluster
from .common import JobSpec, execute_serial, format_table

__all__ = ["POLICIES", "jobs", "run_job", "run", "assemble", "render",
           "profiles"]

#: (key, policy spec) -- the palette under comparison.  Three fixed
#: single-codec policies and three adaptive ones over the same codecs.
POLICIES: Tuple[Tuple[str, str], ...] = (
    ("fixed-onebit", "fixed:algorithm=onebit"),
    ("fixed-dgc", "fixed:algorithm=dgc"),
    ("fixed-terngrad", "fixed:algorithm=terngrad"),
    ("size", "size:small=terngrad,large=dgc,threshold_bytes=4194304"),
    ("bandwidth", "bandwidth:algorithm=dgc"),
    ("accordion", "accordion:conservative=terngrad,aggressive=dgc"),
)


def profiles(num_nodes: int = 16,
             large_nodes: Optional[int] = None,
             iterations: int = 4,
             large_iterations: int = 2) -> List[Dict]:
    """The cluster profiles under test (JSON rows; see :func:`run_job`).

    ``large_nodes=None`` runs the ``ec2-v100-256`` preset at its native
    256 nodes (expensive: minutes per policy); quick/test runs shrink it.
    """
    return [
        {"key": "ec2", "model": "vgg19", "preset": "ec2-v100",
         "num_nodes": num_nodes, "bandwidth_gbps": None,
         "iterations": iterations},
        {"key": "ec2-congested", "model": "vgg19", "preset": "ec2-v100",
         "num_nodes": num_nodes, "bandwidth_gbps": 8.0,
         "iterations": iterations},
        {"key": "ec2-256", "model": "lstm", "preset": "ec2-v100-256",
         "num_nodes": large_nodes, "bandwidth_gbps": None,
         "iterations": large_iterations},
    ]


def jobs(num_nodes: int = 16, large_nodes: Optional[int] = None,
         iterations: int = 4, large_iterations: int = 2,
         strategy: str = "casync-ps") -> List[JobSpec]:
    """One job per (cluster profile, policy) point."""
    specs: List[JobSpec] = []
    for profile in profiles(num_nodes=num_nodes, large_nodes=large_nodes,
                            iterations=iterations,
                            large_iterations=large_iterations):
        for policy_key, policy in POLICIES:
            specs.append(JobSpec(
                artifact="adaptive",
                job_id=f"adaptive/{profile['key']}-{policy_key}",
                module="repro.experiments.adaptive",
                params={
                    "model": profile["model"],
                    "preset": profile["preset"],
                    "num_nodes": profile["num_nodes"],
                    "bandwidth_gbps": profile["bandwidth_gbps"],
                    "policy": policy,
                    "strategy": strategy,
                    "iterations": profile["iterations"],
                }))
    return specs


def run_job(model: str, preset: str, num_nodes: Optional[int],
            bandwidth_gbps: Optional[float], policy: str, strategy: str,
            iterations: int) -> Dict:
    """Run one policy on one cluster profile; the JSON payload is the
    full :meth:`~repro.adaptive.PolicyRun.to_json_obj` record."""
    cluster = get_cluster(preset, num_nodes=num_nodes)
    if bandwidth_gbps is not None:
        cluster = cluster.with_bandwidth(bandwidth_gbps)
    run = run_policy(model, cluster, policy, strategy=strategy,
                     iterations=iterations)
    payload = run.to_json_obj()
    payload["cluster"] = cluster.name
    payload["num_nodes"] = cluster.num_nodes
    payload["model"] = model
    return payload


def assemble(payloads: Mapping[str, Dict], num_nodes: int = 16,
             large_nodes: Optional[int] = None, iterations: int = 4,
             large_iterations: int = 2,
             strategy: str = "casync-ps") -> Dict[str, Dict]:
    """Fold job payloads into per-profile comparisons.

    Each profile's entry carries its policy payloads plus the ranking:
    ``best`` / ``best_fixed`` policy keys and ``adaptive_wins`` (an
    adaptive policy strictly beat every fixed one).
    """
    results: Dict[str, Dict] = {}
    for profile in profiles(num_nodes=num_nodes, large_nodes=large_nodes,
                            iterations=iterations,
                            large_iterations=large_iterations):
        key = profile["key"]
        rows = {
            policy_key: payloads[f"adaptive/{key}-{policy_key}"]
            for policy_key, _ in POLICIES}
        ranked = sorted(rows, key=lambda k: rows[k]["mean_iteration_time"])
        fixed = [k for k in ranked if rows[k]["policy_kind"] == "fixed"]
        best = ranked[0]
        best_fixed = fixed[0]
        results[key] = {
            "profile": profile,
            "policies": rows,
            "ranking": ranked,
            "best": best,
            "best_fixed": best_fixed,
            "adaptive_wins": (
                rows[best]["mean_iteration_time"]
                < rows[best_fixed]["mean_iteration_time"]),
        }
    return results


def run(num_nodes: int = 16, large_nodes: Optional[int] = None,
        iterations: int = 4, large_iterations: int = 2,
        strategy: str = "casync-ps") -> Dict[str, Dict]:
    kwargs = dict(num_nodes=num_nodes, large_nodes=large_nodes,
                  iterations=iterations, large_iterations=large_iterations,
                  strategy=strategy)
    return assemble(execute_serial(jobs(**kwargs)), **kwargs)


def render(results: Dict[str, Dict]) -> str:
    parts = []
    for key, result in results.items():
        profile = result["profile"]
        rows = result["policies"]
        first = rows[result["ranking"][0]]
        congestion = (f", link capped at {profile['bandwidth_gbps']:g} Gbps"
                      if profile["bandwidth_gbps"] else "")
        parts.append(
            f"Adaptive vs fixed -- {profile['model']} x {first['cluster']} "
            f"({first['num_nodes']} nodes{congestion}), "
            f"{profile['iterations']} iteration(s)")
        table = []
        for policy_key in result["ranking"]:
            payload = rows[policy_key]
            compressed = payload["compressed_per_iteration"]
            table.append([
                policy_key,
                payload["policy"],
                f"{payload['mean_iteration_time'] * 1e3:.3f}",
                f"{sum(compressed) / len(compressed):.1f}"
                if compressed else "static",
            ])
        parts.append(format_table(
            ["policy", "spec", "mean iter (ms)", "compressed/iter"], table))
        best, best_fixed = result["best"], result["best_fixed"]
        if result["adaptive_wins"]:
            gain = (rows[best_fixed]["mean_iteration_time"]
                    / rows[best]["mean_iteration_time"] - 1.0)
            parts.append(
                f"  adaptive '{best}' beats every fixed policy "
                f"(+{gain:.2%} over '{best_fixed}')")
        else:
            parts.append(f"  best: fixed '{best_fixed}' "
                         f"(no adaptive win on this profile)")
        parts.append("")
    return "\n".join(parts).rstrip()
