"""Figure 9: GPU utilization timelines, Ring vs HiPress.

The paper's nsight traces show both systems peak at ~100% GPU, but Ring's
utilization collapses to zero during gradient transmission while HiPress
keeps the GPU busy.  We reproduce the same signal from telemetry: kernel
spans recorded on node 0's compute stream (track ``node0/gpu-compute``),
binned into the fraction of each time bin spent on DNN work -- the
simulator-side equivalent of an nsight timeline.

If an ambient collector is attached (``repro.telemetry.attach`` /
``telemetry_session``), the runs are recorded into it, so a ``--trace``
invocation of the CLI captures fig9's underlying spans too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..cluster import ec2_v100_cluster
from ..telemetry import (TelemetryCollector, current_collector,
                         utilization_series)
from .common import JobSpec, execute_serial, format_table, run_system

__all__ = ["jobs", "run", "run_job", "assemble", "render",
           "UtilizationTrace"]

PANELS = {
    "bert-large": ("hipress-ring", "onebit"),
    "ugatit": ("hipress-ps", "terngrad"),
}


@dataclass(frozen=True)
class UtilizationTrace:
    model: str
    ring_series: Tuple[float, ...]
    hipress_series: Tuple[float, ...]
    ring_mean: float
    hipress_mean: float


def _traced_utilization(system, model, cluster, bin_s, algorithm=None):
    """Run one system and bin its node-0 compute-kernel spans.

    Records into the ambient collector when one is attached (so a CLI
    ``--trace`` captures the spans), a private one otherwise.
    """
    tel = current_collector() or TelemetryCollector()
    result = run_system(system, model, cluster, algorithm=algorithm,
                        telemetry=tel)
    series = utilization_series(
        tel, track="node0/gpu-compute", bin_width=bin_s,
        horizon=result.iteration_time, run=len(tel.runs) - 1)
    return tuple(series)


def jobs(num_nodes: int = 16, bin_s: float = 0.02) -> List[JobSpec]:
    """One traced run per (panel model, system)."""
    specs = []
    for model, (hipress_system, algorithm) in PANELS.items():
        for system, algo in (("ring", None), (hipress_system, algorithm)):
            specs.append(JobSpec(
                artifact="fig9",
                job_id=f"fig9/{model}-{system}-n{num_nodes}",
                module=__name__,
                params={"model": model, "system": system, "algorithm": algo,
                        "num_nodes": num_nodes, "bin_s": bin_s},
                algorithm=algo))
    return specs


def run_job(model: str, system: str, algorithm, num_nodes: int,
            bin_s: float) -> List[float]:
    return list(_traced_utilization(system, model,
                                    ec2_v100_cluster(num_nodes), bin_s,
                                    algorithm=algorithm))


def assemble(payloads: Mapping[str, List[float]], num_nodes: int = 16,
             bin_s: float = 0.02) -> Dict[str, UtilizationTrace]:
    traces = {}
    for model, (hipress_system, _) in PANELS.items():
        ring_series = tuple(
            payloads[f"fig9/{model}-ring-n{num_nodes}"])
        hipress_series = tuple(
            payloads[f"fig9/{model}-{hipress_system}-n{num_nodes}"])
        traces[model] = UtilizationTrace(
            model=model,
            ring_series=ring_series,
            hipress_series=hipress_series,
            ring_mean=(sum(ring_series) / len(ring_series)
                       if ring_series else 0.0),
            hipress_mean=(sum(hipress_series) / len(hipress_series)
                          if hipress_series else 0.0))
    return traces


def run(num_nodes: int = 16, bin_s: float = 0.02) -> Dict[str, UtilizationTrace]:
    return assemble(execute_serial(jobs(num_nodes=num_nodes, bin_s=bin_s)),
                    num_nodes=num_nodes, bin_s=bin_s)


def _sparkline(series: Tuple[float, ...], width: int = 40) -> str:
    glyphs = " .:-=+*#%@"
    if not series:
        return ""
    step = max(1, len(series) // width)
    sampled = [max(series[i:i + step]) for i in range(0, len(series), step)]
    return "".join(glyphs[min(int(v * (len(glyphs) - 1)), len(glyphs) - 1)]
                   for v in sampled)


def render(traces: Dict[str, UtilizationTrace]) -> str:
    parts = ["Figure 9 -- GPU utilization during one iteration "
             "(paper: Ring goes idle during transmission; HiPress stays busy)"]
    rows = []
    for model, trace in traces.items():
        rows.append([model, "Ring", f"{trace.ring_mean:.0%}",
                     _sparkline(trace.ring_series)])
        rows.append([model, "HiPress", f"{trace.hipress_mean:.0%}",
                     _sparkline(trace.hipress_series)])
    parts.append(format_table(
        ["model", "system", "mean util", "timeline (dense = busy)"], rows))
    return "\n".join(parts)
