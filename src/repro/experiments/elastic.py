"""Compression win/loss under membership churn (elastic training).

Not a paper artifact: this driver exercises the elastic-membership
subsystem (``docs/ELASTIC.md``).  The paper's §6 clusters are static;
the unreliable-internet setting the Hivemind line of work targets has
nodes joining and leaving mid-run, and "On the Utility of Gradient
Compression" argues the compress-or-not verdict must be re-judged there.
Each job runs :func:`repro.training.run_elastic` over one (cluster
profile, churn schedule, system) point:

* profiles -- ``baseline`` (homogeneous EC2), ``wan`` (a quarter of the
  nodes behind WAN links), ``mixed`` (mixed-generation fleet);
* churn -- ``static`` (nobody moves: the elastic no-op), ``light`` and
  ``heavy`` seeded join/leave histories, including mid-epoch
  fail-stops;
* systems -- the uncompressed ``ring`` baseline vs ``hipress-ring``
  (CaSync + selective DGC), as in the ``heterogeneous`` artifact.

The churn schedule travels **inside the job params** as explicit JSON
events, so the PR-5 result cache keys on the schedule's content:
flipping a single join/leave event is a digest miss, replaying the
identical schedule is a hit (tests/test_elastic.py proves both).  The
assembled table feeds ``python -m repro.advisor``, which turns these
goodput numbers into end-to-end time-to-target verdicts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..cluster import ClusterSpec, get_cluster
from ..faults.elastic import (MembershipSchedule, random_membership_schedule,
                              static_membership)
from ..models import get_model
from ..strategies import get_strategy
from ..training import run_elastic
from .common import (SYSTEMS, JobSpec, default_algorithm, execute_serial,
                     format_table)

__all__ = ["SYSTEMS_UNDER_TEST", "CHURNS", "PROFILES", "churn_schedule",
           "profile_cluster", "jobs", "run_job", "run", "assemble",
           "render"]

#: (system key, compression algorithm) -- same pair as the
#: ``heterogeneous`` artifact, so the advisor can compare regimes.
SYSTEMS_UNDER_TEST: Tuple[Tuple[str, Optional[str]], ...] = (
    ("ring", None),
    ("hipress-ring", "dgc"),
)

#: churn key -> (seed, churn_rate); None means the static schedule.
CHURNS: Dict[str, Optional[Tuple[int, float]]] = {
    "static": None,
    "light": (101, 1.0),
    "heavy": (202, 3.0),
}

#: The three cluster profiles under churn.
PROFILES: Tuple[str, ...] = ("baseline", "wan", "mixed")


def profile_cluster(profile: str, num_nodes: int) -> ClusterSpec:
    """Materialize one profile's cluster from its JSON params."""
    if profile == "baseline":
        return get_cluster("ec2-v100", num_nodes=num_nodes)
    if profile == "wan":
        return get_cluster("wan-edge", num_nodes=num_nodes)
    if profile == "mixed":
        return get_cluster("hetero-mixed", num_nodes=num_nodes)
    raise ValueError(f"unknown cluster profile {profile!r}")


def churn_schedule(churn: str, num_nodes: int,
                   epochs: int) -> MembershipSchedule:
    """The named churn history for a fleet of ``num_nodes``."""
    params = CHURNS[churn]
    if params is None:
        return static_membership(num_nodes)
    seed, rate = params
    return random_membership_schedule(
        seed=seed, num_nodes=num_nodes, epochs=epochs, churn_rate=rate)


def jobs(num_nodes: int = 16, epochs: int = 3, model: str = "vgg19",
         profiles: Sequence[str] = PROFILES,
         churns: Sequence[str] = ("static", "light", "heavy")
         ) -> List[JobSpec]:
    """One job per (profile, churn, system) point."""
    specs: List[JobSpec] = []
    for profile in profiles:
        for churn in churns:
            schedule = churn_schedule(churn, num_nodes, epochs)
            for system, algorithm in SYSTEMS_UNDER_TEST:
                specs.append(JobSpec(
                    artifact="elastic",
                    job_id=f"elastic/{profile}-{churn}-{system}",
                    module="repro.experiments.elastic",
                    params={
                        "model": model,
                        "system": system,
                        "algorithm": algorithm,
                        "profile": profile,
                        "num_nodes": num_nodes,
                        "epochs": epochs,
                        "schedule": schedule.to_json_obj(),
                    },
                    algorithm=algorithm))
    return specs


def run_job(model: str, system: str, algorithm: Optional[str], profile: str,
            num_nodes: int, epochs: int,
            schedule: Mapping[str, Any]) -> Dict[str, Any]:
    """Run one system through one churn history on one profile."""
    cluster = profile_cluster(profile, num_nodes)
    membership = MembershipSchedule.from_json_obj(schedule)
    config = SYSTEMS[system]
    algo = None if algorithm is None else default_algorithm(algorithm)
    report = run_elastic(
        get_model(model), cluster, get_strategy(config.strategy),
        membership, epochs=epochs,
        algorithm=algo, planner_kind=config.planner_kind,
        use_coordinator=config.use_coordinator,
        batch_compression=config.batch_compression)
    return {
        "cluster": cluster.name,
        "num_nodes": cluster.num_nodes,
        "schedule_token": report.schedule_token,
        "total_time_s": report.total_time_s,
        "samples": report.samples,
        "goodput": report.goodput,
        "completed_epochs": report.completed_epochs,
        "mean_roster_size": report.mean_roster_size,
        "epochs": [
            {"epoch": e.epoch, "roster": list(e.roster),
             "status": e.status, "elapsed_s": e.elapsed_s,
             "departures": [[n, f] for n, f in e.departures]}
            for e in report.epochs],
    }


def assemble(payloads: Mapping[str, Dict],
             num_nodes: int = 16, epochs: int = 3, model: str = "vgg19",
             profiles: Sequence[str] = PROFILES,
             churns: Sequence[str] = ("static", "light", "heavy")
             ) -> Dict[str, Dict]:
    """Fold job payloads into the per-(profile, churn) win/loss table."""
    plain_system = SYSTEMS_UNDER_TEST[0][0]
    compressed_system = SYSTEMS_UNDER_TEST[1][0]
    results: Dict[str, Dict] = {}
    for profile in profiles:
        for churn in churns:
            key = f"{profile}-{churn}"
            plain = payloads[f"elastic/{key}-{plain_system}"]
            compressed = payloads[f"elastic/{key}-{compressed_system}"]
            results[key] = {
                "profile": profile,
                "churn": churn,
                "model": model,
                "num_nodes": num_nodes,
                "systems": {plain_system: plain,
                            compressed_system: compressed},
                "speedup": (plain["total_time_s"]
                            / compressed["total_time_s"]),
                "compression_wins": (compressed["total_time_s"]
                                     < plain["total_time_s"]),
                "mean_roster_size": compressed["mean_roster_size"],
            }
    return results


def run(num_nodes: int = 16, epochs: int = 3, model: str = "vgg19",
        profiles: Sequence[str] = PROFILES,
        churns: Sequence[str] = ("static", "light", "heavy")
        ) -> Dict[str, Dict]:
    kwargs = dict(num_nodes=num_nodes, epochs=epochs, model=model,
                  profiles=profiles, churns=churns)
    return assemble(execute_serial(jobs(**kwargs)), **kwargs)


def render(results: Dict[str, Dict]) -> str:
    plain_system = SYSTEMS_UNDER_TEST[0][0]
    compressed_system = SYSTEMS_UNDER_TEST[1][0]
    first = next(iter(results.values()))
    parts = [
        f"Compression win/loss under membership churn "
        f"({first['num_nodes']}-node fleet, {first['model']}): "
        f"{plain_system} vs {compressed_system}"]
    table = []
    for key, result in results.items():
        systems = result["systems"]
        table.append([
            key,
            f"{result['mean_roster_size']:.1f}",
            f"{systems[plain_system]['total_time_s'] * 1e3:.1f}",
            f"{systems[compressed_system]['total_time_s'] * 1e3:.1f}",
            f"{result['speedup']:.2f}x",
            "win" if result["compression_wins"] else "loss",
        ])
    parts.append(format_table(
        ["profile-churn", "roster", f"{plain_system} (ms)",
         f"{compressed_system} (ms)", "speedup", "compression"], table))
    return "\n".join(parts)
