"""Figure 7: throughput of computer-vision models on EC2 (weak scaling).

(a) VGG19 atop MXNet with onebit (BytePS, Ring, BytePS(OSS-onebit),
    HiPress-CaSync-PS/Ring);
(b) ResNet50 atop TensorFlow with DGC (BytePS, Ring, Ring(OSS-DGC),
    HiPress-CaSync-Ring);
(c) UGATIT atop PyTorch with TernGrad (BytePS, Ring, HiPress-CaSync-PS --
    PyTorch has no OSS compression baseline, §6.2).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from .common import JobSpec, execute_serial
from .throughput import (ThroughputSweep, assemble_sweep, render_sweep,
                         sweep_jobs)

__all__ = ["PAPER_SPEEDUPS", "jobs", "run", "assemble", "render"]

#: §6.2 headline comparisons at 128 GPUs: (model, system, baseline) ->
#: paper speedup (fraction).
PAPER_SPEEDUPS: Dict[Tuple[str, str, str], float] = {
    ("vgg19", "hipress-ps", "byteps"): 1.105,
    ("vgg19", "hipress-ps", "ring"): 0.604,
    ("vgg19", "hipress-ps", "byteps-oss"): 0.695,
    ("resnet50", "hipress-ring", "ring-oss"): 0.207,  # "up to 20.7%"
    ("ugatit", "hipress-ps", "ring"): 1.1,            # "up to 2.1x"
}

PANELS = {
    "vgg19": dict(
        systems=("byteps", "ring", "byteps-oss", "hipress-ps",
                 "hipress-ring"),
        algorithm="onebit"),
    "resnet50": dict(
        systems=("byteps", "ring", "ring-oss", "hipress-ring"),
        algorithm="dgc"),
    "ugatit": dict(
        systems=("byteps", "ring", "hipress-ps"),
        algorithm="terngrad"),
}


def jobs(node_counts: Sequence[int] = (1, 2, 4, 8, 16)) -> List[JobSpec]:
    """One job per (panel model, system, cluster point)."""
    specs: List[JobSpec] = []
    for model, panel in PANELS.items():
        specs.extend(sweep_jobs("fig7", model, node_counts=node_counts,
                                **panel))
    return specs


def assemble(payloads: Mapping[str, Dict],
             node_counts: Sequence[int] = (1, 2, 4, 8, 16)
             ) -> Dict[str, ThroughputSweep]:
    return {
        model: assemble_sweep(payloads, "fig7", model,
                              node_counts=node_counts, **panel)
        for model, panel in PANELS.items()
    }


def run(node_counts: Sequence[int] = (1, 2, 4, 8, 16)
        ) -> Dict[str, ThroughputSweep]:
    return assemble(execute_serial(jobs(node_counts=node_counts)),
                    node_counts=node_counts)


def render(results: Dict[str, ThroughputSweep]) -> str:
    parts = []
    for model, result in results.items():
        parts.append(render_sweep(
            result, f"Figure 7 -- {model} throughput "
                    f"({result.model}, {result.algorithm})"))
        for (m, system, baseline), paper in PAPER_SPEEDUPS.items():
            if m != model or system not in result.series \
                    or baseline not in result.series:
                continue
            ours = result.speedup(system, baseline)
            parts.append(
                f"  {system} vs {baseline} at {result.gpu_counts[-1]} GPUs: "
                f"paper=+{paper:.1%} ours=+{ours:.1%}")
    return "\n".join(parts)
