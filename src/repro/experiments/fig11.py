"""Figure 11: effectiveness of the individual optimizations (ablation).

Stacks the CaSync optimizations one by one on the local cluster and
reports the synchronization cost (iteration time minus compute) at each
stage, exactly as the paper's latency breakdown does:

* ``default``    -- best non-compression baseline (BytePS for VGG19,
                    Ring for Bert-base);
* ``on-cpu``     -- open-source on-CPU onebit inside BytePS (VGG19 only;
                    "this does not apply to Bert-base since Ring uses GPU");
* ``on-gpu``     -- CompLL on-GPU compression, no CaSync optimizations;
* ``+pipelining``-- partition-level compression/communication overlap;
* ``+bulk``      -- coordinator message batching + batch compression;
* ``+secopa``    -- selective compression and partitioning.

Paper deltas: VGG19 sync cost falls 41.2% (on-GPU), then 7.8%
(pipelining), 26.1% (bulk), 19.9% (SeCoPa); Bert-base falls 10.0%, 10.6%,
6.6%, 7.4%; on-CPU *adds* 32.2% for VGG19.

Since the SyncPlan IR refactor, each ablation stage corresponds exactly
to removing optimization passes from the strategy's pipeline
(:meth:`~repro.strategies.base.Strategy.passes`): ``on-gpu`` runs with no
optional passes, ``+pipelining`` adds PartitionPass, ``+bulk`` adds
BulkRoutePass, and ``+secopa`` adds SelectivePass -- so this figure is
literally a pass-pipeline ablation.  Inspect any stage's IR with
``python -m repro.experiments fig11 --dump-sync-plan DIR``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..cluster import local_1080ti_cluster
from ..strategies import (
    BytePS,
    BytePSOSSCompression,
    CaSyncPS,
    CaSyncRing,
    RingAllreduce,
)
from ..training import make_plans, simulate_iteration
from .common import JobSpec, default_algorithm, execute_serial, format_table

__all__ = ["PAPER_DELTAS", "jobs", "run", "run_job", "assemble", "render",
           "AblationStage"]

#: Paper per-stage relative sync-cost changes (negative = reduction).
PAPER_DELTAS: Dict[str, Dict[str, float]] = {
    "vgg19": {"on-cpu": +0.322, "on-gpu": -0.412, "+pipelining": -0.078,
              "+bulk": -0.261, "+secopa": -0.199},
    "bert-base": {"on-gpu": -0.100, "+pipelining": -0.106,
                  "+bulk": -0.066, "+secopa": -0.074},
}


@dataclass(frozen=True)
class AblationStage:
    stage: str
    sync_time: float
    compute_time: float
    delta_vs_previous: Optional[float]
    paper_delta: Optional[float]


def _stages_for(model_name: str):
    """(baseline strategy, casync class, planner preset) per §6.3."""
    if model_name == "vgg19":
        return BytePS(), CaSyncPS, "ps_colocated", True
    return RingAllreduce(), CaSyncRing, "ring", False


def _stage_names(model: str) -> Tuple[str, ...]:
    """Ablation stages in paper order (on-cpu applies to VGG19 only)."""
    _, _, _, include_cpu = _stages_for(model)
    stages = ["default"]
    if include_cpu:
        stages.append("on-cpu")
    stages.extend(["on-gpu", "+pipelining", "+bulk", "+secopa"])
    return tuple(stages)


def _stage_kwargs(model: str, stage: str, cluster, algorithm) -> dict:
    """simulate_iteration kwargs for one ablation stage."""
    baseline, casync_cls, preset, _ = _stages_for(model)
    if stage == "default":
        return dict(strategy=baseline, algorithm=None)
    if stage == "on-cpu":
        return dict(strategy=BytePSOSSCompression(worker_on_cpu=True),
                    algorithm=algorithm)
    if stage == "on-gpu":
        return dict(strategy=casync_cls(pipelining=False, bulk=False,
                                        selective=False),
                    algorithm=algorithm)
    if stage == "+pipelining":
        return dict(strategy=casync_cls(pipelining=True, bulk=False,
                                        selective=False),
                    algorithm=algorithm)
    if stage == "+bulk":
        return dict(strategy=casync_cls(pipelining=True, bulk=True,
                                        selective=False),
                    algorithm=algorithm, use_coordinator=True,
                    batch_compression=True)
    if stage == "+secopa":
        plans = make_plans(model_spec(model), cluster, algorithm, preset)
        return dict(strategy=casync_cls(pipelining=True, bulk=True,
                                        selective=True),
                    algorithm=algorithm, plans=plans, use_coordinator=True,
                    batch_compression=True)
    raise ValueError(f"unknown ablation stage {stage!r}")


def jobs(num_nodes: int = 16,
         models: Tuple[str, ...] = ("vgg19", "bert-base")) -> List[JobSpec]:
    """One job per (model, ablation stage) simulation."""
    return [
        JobSpec(artifact="fig11",
                job_id=f"fig11/{model}-{stage}-n{num_nodes}",
                module=__name__,
                params={"model": model, "stage": stage,
                        "num_nodes": num_nodes},
                algorithm=None if stage == "default" else "onebit")
        for model in models
        for stage in _stage_names(model)
    ]


def run_job(model: str, stage: str, num_nodes: int) -> Dict:
    cluster = local_1080ti_cluster(num_nodes)
    algorithm = default_algorithm("onebit")
    kwargs = _stage_kwargs(model, stage, cluster, algorithm)
    strategy = kwargs.pop("strategy")
    result = simulate_iteration(model_spec(model), cluster, strategy,
                                **kwargs)
    return {"sync_time": result.exposed_sync_time,
            "compute_time": result.compute_time}


def assemble(payloads: Mapping[str, Dict], num_nodes: int = 16,
             models: Tuple[str, ...] = ("vgg19", "bert-base")
             ) -> Dict[str, List[AblationStage]]:
    out: Dict[str, List[AblationStage]] = {}
    for model in models:
        rows: List[AblationStage] = []
        previous_sync = None
        for stage_name in _stage_names(model):
            payload = payloads[f"fig11/{model}-{stage_name}-n{num_nodes}"]
            sync = payload["sync_time"]
            delta = (None if previous_sync in (None, 0)
                     else sync / previous_sync - 1.0)
            # on-cpu is measured against default, later stages against the
            # previous stage, matching the paper's narrative.
            if stage_name == "on-gpu" and previous_sync is not None:
                base_sync = rows[0].sync_time
                delta = sync / base_sync - 1.0 if base_sync else None
            rows.append(AblationStage(
                stage=stage_name, sync_time=sync,
                compute_time=payload["compute_time"],
                delta_vs_previous=delta,
                paper_delta=PAPER_DELTAS[model].get(stage_name)))
            if stage_name != "on-cpu":
                previous_sync = sync
        out[model] = rows
    return out


def run(num_nodes: int = 16,
        models: Tuple[str, ...] = ("vgg19", "bert-base")
        ) -> Dict[str, List[AblationStage]]:
    return assemble(execute_serial(jobs(num_nodes=num_nodes, models=models)),
                    num_nodes=num_nodes, models=models)


def model_spec(name: str):
    from ..models import get_model
    return get_model(name)


def render(results: Dict[str, List[AblationStage]]) -> str:
    parts = ["Figure 11 -- impact of enabling optimizations one by one "
             "(sync cost per iteration, local cluster)"]
    for model, stages in results.items():
        rows = []
        for stage in stages:
            rows.append([
                stage.stage,
                f"{stage.sync_time * 1000:.1f} ms",
                ("" if stage.delta_vs_previous is None
                 else f"{stage.delta_vs_previous:+.1%}"),
                ("" if stage.paper_delta is None
                 else f"{stage.paper_delta:+.1%}"),
            ])
        parts.append(f"[{model}]")
        parts.append(format_table(
            ["stage", "sync cost", "delta (ours)", "delta (paper)"], rows))
    return "\n".join(parts)
