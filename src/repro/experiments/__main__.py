"""CLI: regenerate paper tables and figures.

Usage::

    python -m repro.experiments               # everything (minutes)
    python -m repro.experiments table1 fig11  # selected artifacts
    python -m repro.experiments --list
    python -m repro.experiments --quick       # smaller clusters, faster
    python -m repro.experiments fig9 --trace trace.json --metrics metrics.csv
    python -m repro.experiments fig11 --dump-sync-plan plans/

Rendered outputs print to stdout and are saved under ``results/``.
``--trace`` attaches a telemetry collector to every simulation in the run
and writes a Chrome-tracing/Perfetto JSON timeline; ``--metrics`` dumps
the metrics registry (``.csv`` or ``.json`` by extension);
``--dump-sync-plan`` writes every distinct SyncPlan IR built during the
run as ``<strategy>-<digest>.json``/``.txt`` pairs (see docs/SYNC_IR.md).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time
from pathlib import Path

from . import (
    fig7, fig8, fig9, fig10, fig11, fig12, fig13, kernel_speed,
    table1, table5, table6, table7,
)


def _runner(module, **kwargs):
    def run():
        return module.render(module.run(**kwargs))
    return run


def _fig12_runner(**kwargs):
    def run():
        return fig12.render(fig12.run_bandwidth(**kwargs),
                            fig12.run_rate(**kwargs))
    return run


def build_registry(quick: bool):
    nodes = 8 if quick else 16
    sweep_nodes = (4, 8) if quick else (4, 16)
    return {
        "table1": _runner(table1, num_nodes=nodes),
        "table5": _runner(table5),
        "table6": _runner(table6),
        "table7": _runner(table7),
        "fig7": _runner(fig7, node_counts=sweep_nodes),
        "fig8": _runner(fig8, node_counts=sweep_nodes),
        "fig9": _runner(fig9, num_nodes=nodes),
        "fig10": _runner(fig10, num_nodes=nodes),
        "fig11": _runner(fig11, num_nodes=nodes),
        "fig12": _fig12_runner(num_nodes=nodes),
        "fig13": _runner(fig13),
        "kernel_speed": _runner(kernel_speed),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("artifacts", nargs="*",
                        help="artifact names (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available artifacts")
    parser.add_argument("--quick", action="store_true",
                        help="smaller clusters for a fast pass")
    parser.add_argument("--output-dir", default="results",
                        help="directory for rendered text outputs")
    parser.add_argument("--trace", metavar="FILE",
                        help="record all simulations and write a "
                             "Chrome-tracing JSON timeline to FILE")
    parser.add_argument("--metrics", metavar="FILE",
                        help="write collected metrics to FILE "
                             "(.csv or .json)")
    parser.add_argument("--dump-sync-plan", metavar="DIR",
                        help="dump every SyncPlan IR built during the run "
                             "as JSON + text into DIR")
    args = parser.parse_args(argv)

    registry = build_registry(quick=args.quick)
    if args.list:
        print("\n".join(sorted(registry)))
        return 0

    selected = args.artifacts or sorted(registry)
    unknown = [a for a in selected if a not in registry]
    if unknown:
        parser.error(f"unknown artifacts: {unknown}; "
                     f"available: {sorted(registry)}")

    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    collector = None
    if args.trace or args.metrics:
        from ..telemetry import TelemetryCollector, attach, detach
        collector = TelemetryCollector()
        attach(collector)
    if args.dump_sync_plan:
        from ..casync.lower import sync_plan_dump
        dump_ctx = sync_plan_dump(args.dump_sync_plan)
    else:
        dump_ctx = contextlib.nullcontext()
    try:
        with dump_ctx:
            for name in selected:
                start = time.time()
                text = registry[name]()
                elapsed = time.time() - start
                (out_dir / f"{name}.txt").write_text(text + "\n")
                print(text)
                print(f"[{name} regenerated in {elapsed:.1f}s -> "
                      f"{out_dir / (name + '.txt')}]\n")
    finally:
        if collector is not None:
            detach(collector)
    if args.dump_sync_plan:
        dumped = sorted(Path(args.dump_sync_plan).glob("*.json"))
        print(f"[{len(dumped)} sync plan(s) -> {args.dump_sync_plan}]")
    if collector is not None:
        if args.trace:
            from ..telemetry import write_chrome_trace
            write_chrome_trace(collector, args.trace)
            print(f"[trace: {len(collector.spans)} spans -> {args.trace}]")
        if args.metrics:
            from ..telemetry import to_metrics_csv, to_metrics_json
            path = Path(args.metrics)
            if path.suffix.lower() == ".json":
                path.write_text(to_metrics_json(collector))
            else:
                path.write_text(to_metrics_csv(collector))
            print(f"[metrics -> {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
