"""CLI: regenerate paper tables and figures.

Usage::

    python -m repro.experiments               # everything (minutes)
    python -m repro.experiments table1 fig11  # selected artifacts
    python -m repro.experiments --list
    python -m repro.experiments --quick       # smaller clusters, faster
    python -m repro.experiments --jobs 8      # parallel across processes
    python -m repro.experiments --resume      # continue an interrupted run
    python -m repro.experiments fig9 --trace trace.json --metrics metrics.csv
    python -m repro.experiments fig11 --dump-sync-plan plans/

Rendered outputs print to stdout and are saved under ``results/``.

Every invocation routes through :mod:`repro.experiments.runner`: each
artifact's jobs manifest is executed (in-process by default, across
``--jobs N`` worker processes otherwise) with results memoized in a
content-addressed cache (``--cache-dir``, default ``<output-dir>/.cache``;
``--no-cache`` disables).  A run journal makes interrupted regenerations
resumable with ``--resume``.  Parallel, cached, and serial runs are
bit-identical -- see ``tests/test_runner_conformance.py``.

``--trace`` attaches a telemetry collector and writes a
Chrome-tracing/Perfetto JSON timeline (with ``--jobs N`` the simulations
run in worker processes, so the trace covers the runner's own per-job
spans rather than simulator internals); ``--metrics`` dumps the metrics
registry (``.csv`` or ``.json`` by extension); ``--dump-sync-plan``
writes every distinct SyncPlan IR built during the run (in-process runs
only, so it conflicts with ``--jobs``).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time
from pathlib import Path

from . import (
    adaptive, elastic, fig7, fig8, fig9, fig10, fig11, fig12, fig13,
    heterogeneous, kernel_speed, table1, table5, table6, table7,
)
from .runner import ExperimentRunner, ResultCache, RunJournal, artifact_plans


def _runner(module, **kwargs):
    def run():
        return module.render(module.run(**kwargs))
    return run


def _fig12_runner(**kwargs):
    def run():
        return fig12.render(fig12.run_bandwidth(**kwargs),
                            fig12.run_rate(**kwargs))
    return run


def build_registry(quick: bool):
    """Legacy serial registry: name -> zero-arg render closure.

    Kept for API compatibility; ``main`` itself now routes through
    :func:`repro.experiments.runner.artifact_plans`, which mirrors
    these parameterizations exactly.
    """
    nodes = 8 if quick else 16
    sweep_nodes = (4, 8) if quick else (4, 16)
    return {
        "adaptive": _runner(adaptive, num_nodes=nodes,
                            large_nodes=32 if quick else None,
                            iterations=2 if quick else 4),
        "table1": _runner(table1, num_nodes=nodes),
        "table5": _runner(table5),
        "table6": _runner(table6),
        "table7": _runner(table7),
        "fig7": _runner(fig7, node_counts=sweep_nodes),
        "fig8": _runner(fig8, node_counts=sweep_nodes),
        "fig9": _runner(fig9, num_nodes=nodes),
        "fig10": _runner(fig10, num_nodes=nodes),
        "fig11": _runner(fig11, num_nodes=nodes),
        "fig12": _fig12_runner(num_nodes=nodes),
        "fig13": _runner(fig13),
        "heterogeneous": _runner(
            heterogeneous, num_nodes=nodes,
            severities=(4.0,) if quick else (2.0, 4.0, 8.0),
            wan_up_gbps=(1.0,) if quick else (0.5, 1.0, 4.0)),
        "elastic": _runner(
            elastic, num_nodes=nodes, epochs=2 if quick else 3,
            churns=("static", "light") if quick
            else ("static", "light", "heavy")),
        "kernel_speed": _runner(kernel_speed),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("artifacts", nargs="*",
                        help="artifact names (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available artifacts")
    parser.add_argument("--quick", action="store_true",
                        help="smaller clusters for a fast pass")
    parser.add_argument("--output-dir", default="results",
                        help="directory for rendered text outputs")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="worker processes (0 = in-process serial)")
    parser.add_argument("--resume", action="store_true",
                        help="skip jobs already completed by an "
                             "interrupted run (needs the cache)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="content-addressed result cache "
                             "(default: <output-dir>/.cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every job; do not read or "
                             "write the cache")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-job timeout in seconds")
    parser.add_argument("--trace", metavar="FILE",
                        help="record all simulations and write a "
                             "Chrome-tracing JSON timeline to FILE")
    parser.add_argument("--metrics", metavar="FILE",
                        help="write collected metrics to FILE "
                             "(.csv or .json)")
    parser.add_argument("--dump-sync-plan", metavar="DIR",
                        help="dump every SyncPlan IR built during the run "
                             "as JSON + text into DIR (in-process only)")
    args = parser.parse_args(argv)

    plans = artifact_plans(quick=args.quick)
    if args.list:
        print("\n".join(sorted(plans)))
        return 0

    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    if args.resume and args.no_cache:
        parser.error("--resume needs the cache; drop --no-cache")
    if args.dump_sync_plan and args.jobs:
        parser.error("--dump-sync-plan requires an in-process run; "
                     "drop --jobs")

    selected = args.artifacts or sorted(plans)
    unknown = [a for a in selected if a not in plans]
    if unknown:
        parser.error(f"unknown artifacts: {unknown}; "
                     f"available: {sorted(plans)}")

    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    cache = journal = None
    if not args.no_cache:
        cache_dir = Path(args.cache_dir) if args.cache_dir \
            else out_dir / ".cache"
        cache = ResultCache(cache_dir)
        journal = RunJournal(cache_dir / "journal.jsonl")

    collector = None
    if args.trace or args.metrics:
        from ..telemetry import TelemetryCollector, attach, detach
        collector = TelemetryCollector()
        attach(collector)
    if args.dump_sync_plan:
        from ..casync.lower import sync_plan_dump
        dump_ctx = sync_plan_dump(args.dump_sync_plan)
    else:
        dump_ctx = contextlib.nullcontext()

    def progress(event):
        print(f"  [{event['done']}/{event['total']}] {event['job_id']} "
              f"({event['status']}, {event['duration_s']:.1f}s)",
              file=sys.stderr)

    runner = ExperimentRunner(
        max_workers=args.jobs, cache=cache, journal=journal,
        resume=args.resume, timeout_s=args.timeout, telemetry=collector,
        progress=progress)

    specs = []
    for name in selected:
        specs.extend(plans[name].specs())

    start = time.time()
    exit_code = 0
    try:
        with dump_ctx:
            report = runner.run(specs)
            for name in selected:
                if any(f.job_id.startswith(f"{name}/")
                       for f in report.failures):
                    continue
                text = plans[name].render(plans[name].assemble(
                    report.payloads))
                (out_dir / f"{name}.txt").write_text(text + "\n")
                print(text)
                print(f"[{name} -> {out_dir / (name + '.txt')}]\n")
    except KeyboardInterrupt:
        print("\n[interrupted -- rerun with --resume to continue]",
              file=sys.stderr)
        return 130
    finally:
        if collector is not None:
            from ..telemetry import detach
            detach(collector)
    elapsed = time.time() - start
    print(f"[{report.executed} executed, {report.cache_hits} cached"
          f"{f', {report.resumed} resumed' if report.resumed else ''}"
          f", {len(report.failures)} failed in {elapsed:.1f}s]")
    for failure in report.failures:
        print(f"  FAILED {failure.job_id}: [{failure.kind}] "
              f"{failure.error_type}: {failure.message.splitlines()[0]}",
              file=sys.stderr)
        exit_code = 1

    if args.dump_sync_plan:
        dumped = sorted(Path(args.dump_sync_plan).glob("*.json"))
        print(f"[{len(dumped)} sync plan(s) -> {args.dump_sync_plan}]")
    if collector is not None:
        if args.trace:
            from ..telemetry import write_chrome_trace
            write_chrome_trace(collector, args.trace)
            print(f"[trace: {len(collector.spans)} spans -> {args.trace}]")
        if args.metrics:
            from ..telemetry import to_metrics_csv, to_metrics_json
            path = Path(args.metrics)
            if path.suffix.lower() == ".json":
                path.write_text(to_metrics_json(collector))
            else:
                path.write_text(to_metrics_csv(collector))
            print(f"[metrics -> {path}]")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
