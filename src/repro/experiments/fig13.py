"""Figure 13: convergence validation with real numerical training.

The paper trains LSTM (to a target perplexity) and ResNet50 (to a target
accuracy) on the local cluster and shows that HiPress with DGC/TernGrad
converges to the same quality in the same number of iterations -- but up
to 28.6% less wall time, because each iteration is faster.

Here the substitution (per DESIGN.md): real NumPy data-parallel training
on small models with the *actual* compression codecs + error feedback
plays the statistical role; the wall-time axis comes from the throughput
simulator's per-iteration times for the corresponding systems on the
local-cluster profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from ..algorithms import DGC, TernGrad
from ..cluster import local_1080ti_cluster
from ..minidnn import (
    ClassificationData,
    DataParallelTrainer,
    Dense,
    Embedding,
    MarkovTextData,
    ReLU,
    Sequential,
)
from .common import JobSpec, execute_serial, format_table, run_system

__all__ = ["ConvergenceCurve", "jobs", "run", "run_job", "assemble",
           "render", "PAPER"]

PAPER = {"time_saving": 0.286}  # "up to 28.6% less time"


@dataclass(frozen=True)
class ConvergenceCurve:
    task: str                   # "lm-perplexity" or "classifier-accuracy"
    system: str                 # "baseline" or "hipress"
    iteration_time: float       # seconds/iteration from the simulator
    steps: Tuple[int, ...]
    metric: Tuple[float, ...]   # perplexity (lower better) or accuracy
    target: float
    steps_to_target: int        # -1 if never reached

    @property
    def time_to_target(self) -> float:
        if self.steps_to_target < 0:
            return float("inf")
        return self.steps_to_target * self.iteration_time


def _train_lm(algorithm, feedback: str, steps: int, eval_every: int,
              workers: int, seed: int):
    data = MarkovTextData(train_tokens=8000, test_tokens=1500, vocab=48,
                          context=3, seed=1)
    rng_model = np.random.default_rng(21)

    def build():
        return Sequential(
            Embedding(data.vocab, 12, rng=rng_model),
            Dense(12 * data.context, 96, rng=rng_model), ReLU(),
            Dense(96, data.vocab, rng=rng_model))

    trainer = DataParallelTrainer(build, num_workers=workers, lr=0.25,
                                  momentum=0.9, algorithm=algorithm,
                                  feedback=feedback, seed=seed)
    shards = [data.shard(w, workers) for w in range(workers)]
    test_x, test_y = data.windows(data.test_stream)
    rng = np.random.default_rng(seed + 100)
    points = []
    for step in range(1, steps + 1):
        batch = []
        for x, y in shards:
            idx = rng.integers(0, len(x), size=32)
            batch.append((x[idx], y[idx]))
        trainer.step(batch)
        if step % eval_every == 0:
            points.append((step, trainer.perplexity(test_x, test_y)))
    return points


def _train_classifier(algorithm, feedback: str, steps: int,
                      eval_every: int, workers: int, seed: int):
    data = ClassificationData(num_classes=8, dim=24, train_size=1600,
                              noise=1.6, seed=2)
    rng_model = np.random.default_rng(22)

    def build():
        return Sequential(
            Dense(data.dim, 96, rng=rng_model), ReLU(),
            Dense(96, data.num_classes, rng=rng_model))

    trainer = DataParallelTrainer(build, num_workers=workers, lr=0.12,
                                  momentum=0.9, algorithm=algorithm,
                                  feedback=feedback, seed=seed)
    shards = [data.shard(w, workers) for w in range(workers)]
    rng = np.random.default_rng(seed + 200)
    points = []
    for step in range(1, steps + 1):
        batch = []
        for x, y in shards:
            idx = rng.integers(0, len(x), size=16)
            batch.append((x[idx], y[idx]))
        trainer.step(batch)
        if step % eval_every == 0:
            points.append((step, trainer.accuracy(data.test_x, data.test_y)))
    return points


def _steps_to(points, target, lower_is_better) -> int:
    for step, value in points:
        if (value <= target) if lower_is_better else (value >= target):
            return step
    return -1


#: Simulator runs giving the wall-time axis: LSTM-role task syncs via
#: Ring vs HiPress-CaSync-Ring(DGC); classifier-role via Ring vs
#: HiPress-CaSync-PS(TernGrad), as in the paper.
SIM_GRID = (
    ("lm", "baseline", "ring", "lstm", None),
    ("lm", "hipress", "hipress-ring", "lstm", "dgc"),
    ("cls", "baseline", "ring", "resnet50", None),
    ("cls", "hipress", "hipress-ps", "resnet50", "terngrad"),
)


def jobs(steps: int = 300, eval_every: int = 15, workers: int = 4,
         num_nodes: int = 16) -> List[JobSpec]:
    """Four simulator jobs (wall-time axis) + four training jobs."""
    specs = []
    for task, role, system, model, algo in SIM_GRID:
        specs.append(JobSpec(
            artifact="fig13",
            job_id=f"fig13/sim-{task}-{role}-n{num_nodes}",
            module=__name__,
            params={"kind": "sim", "system": system, "model": model,
                    "algorithm": algo, "num_nodes": num_nodes},
            algorithm=algo))
    for task in ("lm", "cls"):
        for role in ("baseline", "hipress"):
            specs.append(JobSpec(
                artifact="fig13",
                job_id=f"fig13/train-{task}-{role}",
                module=__name__,
                params={"kind": "train", "task": task, "role": role,
                        "steps": steps, "eval_every": eval_every,
                        "workers": workers}))
    return specs


def run_job(kind: str, **params) -> object:
    if kind == "sim":
        cluster = local_1080ti_cluster(params["num_nodes"])
        result = run_system(params["system"], params["model"], cluster,
                            algorithm=params["algorithm"], on_ec2=False)
        return {"iteration_time": result.iteration_time}
    if kind == "train":
        steps = params["steps"]
        eval_every = params["eval_every"]
        workers = params["workers"]
        task, role = params["task"], params["role"]
        if task == "lm":
            if role == "baseline":
                points = _train_lm(None, "none", steps, eval_every,
                                   workers, 7)
            else:
                # DGC's published 0.1% rate is tuned to multi-hundred-MB
                # models; its own paper warms up with gentler rates on
                # small ones.  This LM has ~10k parameters, so the
                # equivalent working rate is far higher.
                points = _train_lm(DGC(rate=0.25), "dgc", steps,
                                   eval_every, workers, 7)
        else:
            if role == "baseline":
                points = _train_classifier(None, "none", steps, eval_every,
                                           workers, 9)
            else:
                points = _train_classifier(TernGrad(bitwidth=2, seed=5),
                                           "error", steps, eval_every,
                                           workers, 9)
        return [[step, float(value)] for step, value in points]
    raise ValueError(f"unknown fig13 job kind {kind!r}")


def assemble(payloads: Mapping[str, object], steps: int = 300,
             eval_every: int = 15, workers: int = 4, num_nodes: int = 16
             ) -> Dict[str, List[ConvergenceCurve]]:
    iter_times = {
        (task, role): payloads[f"fig13/sim-{task}-{role}-n{num_nodes}"]
        ["iteration_time"]
        for task, role, _, _, _ in SIM_GRID
    }
    points = {
        (task, role): [(step, value) for step, value in
                       payloads[f"fig13/train-{task}-{role}"]]
        for task in ("lm", "cls")
        for role in ("baseline", "hipress")
    }

    # Targets: what the baseline reaches by the end (the paper uses the
    # model-zoo reference numbers the baseline attains).
    lm_target = min(v for _, v in points[("lm", "baseline")]) * 1.05
    cls_target = max(v for _, v in points[("cls", "baseline")]) * 0.98

    def curve(task_label, task, role, target, lower):
        pts = points[(task, role)]
        system = "baseline" if role == "baseline" else "hipress"
        return ConvergenceCurve(
            task=task_label, system=system,
            iteration_time=iter_times[(task, role)],
            steps=tuple(s for s, _ in pts),
            metric=tuple(v for _, v in pts),
            target=target,
            steps_to_target=_steps_to(pts, target, lower))

    return {
        "lm-perplexity": [
            curve("lm-perplexity", "lm", "baseline", lm_target, True),
            curve("lm-perplexity", "lm", "hipress", lm_target, True),
        ],
        "classifier-accuracy": [
            curve("classifier-accuracy", "cls", "baseline", cls_target,
                  False),
            curve("classifier-accuracy", "cls", "hipress", cls_target,
                  False),
        ],
    }


def run(steps: int = 300, eval_every: int = 15, workers: int = 4,
        num_nodes: int = 16) -> Dict[str, List[ConvergenceCurve]]:
    return assemble(
        execute_serial(jobs(steps=steps, eval_every=eval_every,
                            workers=workers, num_nodes=num_nodes)),
        steps=steps, eval_every=eval_every, workers=workers,
        num_nodes=num_nodes)


def render(results: Dict[str, List[ConvergenceCurve]]) -> str:
    parts = ["Figure 13 -- convergence: compressed training reaches the "
             "same target quality, in less wall time"]
    rows = []
    for task, curves in results.items():
        base, hipress = curves
        for c in curves:
            reached = (f"step {c.steps_to_target}"
                       if c.steps_to_target > 0 else "not reached")
            rows.append([task, c.system, f"{c.target:.3f}", reached,
                         f"{c.iteration_time * 1000:.0f} ms/iter",
                         (f"{c.time_to_target:.1f} s"
                          if c.time_to_target != float("inf") else "-")])
        if base.time_to_target > 0 and hipress.steps_to_target > 0:
            saving = 1 - hipress.time_to_target / base.time_to_target
            rows.append([task, "=> time saving", "", "", "",
                         f"{saving:.1%} (paper: up to "
                         f"{PAPER['time_saving']:.1%})"])
    parts.append(format_table(
        ["task", "system", "target", "reached at", "iter time",
         "time to target"], rows))
    return "\n".join(parts)
