"""Figure 10: local-cluster speedups normalized to BytePS.

Bert-base and VGG19 atop MXNet with onebit on the 16-node / 32x1080Ti /
56 Gbps InfiniBand cluster (RDMA for everything, including BytePS).
Paper: HiPress beats the non-compression baselines by up to 133.1% and
BytePS(OSS-onebit) by up to 53.3%; surprisingly, BytePS(OSS-onebit) runs
8.5% *slower* than non-compression Ring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from ..cluster import local_1080ti_cluster
from .common import (JobSpec, SYSTEMS, execute_serial, format_table,
                     run_system)

__all__ = ["PAPER", "jobs", "run", "run_job", "assemble", "render"]

SYSTEM_KEYS = ("byteps", "ring", "byteps-oss", "hipress-ps", "hipress-ring")

#: Paper claims (§6.2.2).
PAPER = {
    "max_gain_over_noncompression": 1.331,
    "max_gain_over_oss": 0.533,
    "oss_vs_ring_slowdown": -0.085,
}


@dataclass(frozen=True)
class Fig10Result:
    model: str
    #: system key -> speedup normalized to BytePS (1.0 = BytePS).
    normalized: Dict[str, float]


def jobs(models: Sequence[str] = ("bert-base", "vgg19"),
         num_nodes: int = 16) -> List[JobSpec]:
    """One job per (model, system) on the local cluster."""
    specs = []
    for model in models:
        for system in SYSTEM_KEYS:
            algo = "onebit" if SYSTEMS[system].compression else None
            specs.append(JobSpec(
                artifact="fig10",
                job_id=f"fig10/{model}-{system}-n{num_nodes}",
                module=__name__,
                params={"model": model, "system": system, "algorithm": algo,
                        "num_nodes": num_nodes},
                algorithm=algo))
    return specs


def run_job(model: str, system: str, algorithm, num_nodes: int) -> Dict:
    result = run_system(system, model, local_1080ti_cluster(num_nodes),
                        algorithm=algorithm, on_ec2=False)
    return {"throughput": result.throughput}


def assemble(payloads: Mapping[str, Dict],
             models: Sequence[str] = ("bert-base", "vgg19"),
             num_nodes: int = 16) -> Dict[str, Fig10Result]:
    out = {}
    for model in models:
        throughput = {
            system: payloads[f"fig10/{model}-{system}-n{num_nodes}"]
            ["throughput"]
            for system in SYSTEM_KEYS
        }
        base = throughput["byteps"]
        out[model] = Fig10Result(
            model=model,
            normalized={k: v / base for k, v in throughput.items()})
    return out


def run(models: Sequence[str] = ("bert-base", "vgg19"),
        num_nodes: int = 16) -> Dict[str, Fig10Result]:
    return assemble(execute_serial(jobs(models=models,
                                        num_nodes=num_nodes)),
                    models=models, num_nodes=num_nodes)


def render(results: Dict[str, Fig10Result]) -> str:
    headers = ["model"] + [SYSTEMS[s].label for s in SYSTEM_KEYS]
    rows = []
    for model, result in results.items():
        rows.append([model] + [f"{result.normalized[s]:.2f}x"
                               for s in SYSTEM_KEYS])
    lines = ["Figure 10 -- local cluster (32x1080Ti, 56Gbps), "
             "speedup normalized to BytePS",
             format_table(headers, rows)]
    for model, result in results.items():
        best_hipress = max(result.normalized["hipress-ps"],
                           result.normalized["hipress-ring"])
        best_base = max(result.normalized["byteps"],
                        result.normalized["ring"])
        lines.append(
            f"  {model}: HiPress vs best non-compression "
            f"+{best_hipress / best_base - 1:.1%} (paper: up to "
            f"+{PAPER['max_gain_over_noncompression']:.1%}); "
            f"vs OSS +{best_hipress / result.normalized['byteps-oss'] - 1:.1%}"
            f" (paper: up to +{PAPER['max_gain_over_oss']:.1%}); "
            f"OSS vs Ring "
            f"{result.normalized['byteps-oss'] / result.normalized['ring'] - 1:+.1%}"
            f" (paper: {PAPER['oss_vs_ring_slowdown']:+.1%})")
    return "\n".join(lines)
