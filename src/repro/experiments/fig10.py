"""Figure 10: local-cluster speedups normalized to BytePS.

Bert-base and VGG19 atop MXNet with onebit on the 16-node / 32x1080Ti /
56 Gbps InfiniBand cluster (RDMA for everything, including BytePS).
Paper: HiPress beats the non-compression baselines by up to 133.1% and
BytePS(OSS-onebit) by up to 53.3%; surprisingly, BytePS(OSS-onebit) runs
8.5% *slower* than non-compression Ring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..cluster import local_1080ti_cluster
from .common import SYSTEMS, format_table, run_system

__all__ = ["PAPER", "run", "render"]

SYSTEM_KEYS = ("byteps", "ring", "byteps-oss", "hipress-ps", "hipress-ring")

#: Paper claims (§6.2.2).
PAPER = {
    "max_gain_over_noncompression": 1.331,
    "max_gain_over_oss": 0.533,
    "oss_vs_ring_slowdown": -0.085,
}


@dataclass(frozen=True)
class Fig10Result:
    model: str
    #: system key -> speedup normalized to BytePS (1.0 = BytePS).
    normalized: Dict[str, float]


def run(models: Sequence[str] = ("bert-base", "vgg19"),
        num_nodes: int = 16) -> Dict[str, Fig10Result]:
    cluster = local_1080ti_cluster(num_nodes)
    out = {}
    for model in models:
        throughput = {}
        for system in SYSTEM_KEYS:
            algo = "onebit" if SYSTEMS[system].compression else None
            result = run_system(system, model, cluster, algorithm=algo,
                                on_ec2=False)
            throughput[system] = result.throughput
        base = throughput["byteps"]
        out[model] = Fig10Result(
            model=model,
            normalized={k: v / base for k, v in throughput.items()})
    return out


def render(results: Dict[str, Fig10Result]) -> str:
    headers = ["model"] + [SYSTEMS[s].label for s in SYSTEM_KEYS]
    rows = []
    for model, result in results.items():
        rows.append([model] + [f"{result.normalized[s]:.2f}x"
                               for s in SYSTEM_KEYS])
    lines = ["Figure 10 -- local cluster (32x1080Ti, 56Gbps), "
             "speedup normalized to BytePS",
             format_table(headers, rows)]
    for model, result in results.items():
        best_hipress = max(result.normalized["hipress-ps"],
                           result.normalized["hipress-ring"])
        best_base = max(result.normalized["byteps"],
                        result.normalized["ring"])
        lines.append(
            f"  {model}: HiPress vs best non-compression "
            f"+{best_hipress / best_base - 1:.1%} (paper: up to "
            f"+{PAPER['max_gain_over_noncompression']:.1%}); "
            f"vs OSS +{best_hipress / result.normalized['byteps-oss'] - 1:.1%}"
            f" (paper: up to +{PAPER['max_gain_over_oss']:.1%}); "
            f"OSS vs Ring "
            f"{result.normalized['byteps-oss'] / result.normalized['ring'] - 1:+.1%}"
            f" (paper: {PAPER['oss_vs_ring_slowdown']:+.1%})")
    return "\n".join(lines)
