"""Weak-scaling throughput sweeps shared by Figures 7, 8 and 10."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..cluster import ClusterSpec, ec2_v100_cluster
from .common import (CLUSTER_FACTORIES, JobSpec, SYSTEMS, format_table,
                     run_system)

__all__ = ["ThroughputSweep", "sweep", "render_sweep", "speedup",
           "sweep_jobs", "run_sweep_job", "assemble_sweep"]


@dataclass(frozen=True)
class ThroughputSweep:
    """Throughput (samples or tokens / s) per system per GPU count."""

    model: str
    algorithm: Optional[str]
    gpu_counts: Tuple[int, ...]
    #: system key -> tuple of throughput values aligned with gpu_counts.
    series: Dict[str, Tuple[float, ...]]

    def speedup(self, system: str, baseline: str,
                index: int = -1) -> float:
        """Relative throughput gain of ``system`` over ``baseline``."""
        return (self.series[system][index] / self.series[baseline][index]
                - 1.0)


def sweep(model: str, systems: Sequence[str],
          algorithm: Optional[str] = None,
          node_counts: Sequence[int] = (1, 2, 4, 8, 16),
          cluster_fn: Callable[[int], ClusterSpec] = ec2_v100_cluster,
          on_ec2: bool = True) -> ThroughputSweep:
    """Run the weak-scaling sweep of Fig. 7/8: throughput vs #GPUs."""
    series: Dict[str, List[float]] = {s: [] for s in systems}
    gpus = []
    for nodes in node_counts:
        cluster = cluster_fn(nodes)
        gpus.append(cluster.total_gpus)
        for system in systems:
            algo = algorithm if SYSTEMS[system].compression else None
            result = run_system(system, model, cluster, algorithm=algo,
                                on_ec2=on_ec2)
            series[system].append(result.throughput)
    return ThroughputSweep(
        model=model, algorithm=algorithm, gpu_counts=tuple(gpus),
        series={k: tuple(v) for k, v in series.items()})


def sweep_jobs(artifact: str, model: str, systems: Sequence[str],
               algorithm: Optional[str] = None,
               node_counts: Sequence[int] = (1, 2, 4, 8, 16),
               cluster: str = "ec2",
               on_ec2: bool = True) -> List[JobSpec]:
    """The sweep of :func:`sweep`, decomposed one job per
    (system, cluster point) -- the runner's unit of parallelism."""
    specs = []
    for nodes in node_counts:
        for system in systems:
            algo = algorithm if SYSTEMS[system].compression else None
            specs.append(JobSpec(
                artifact=artifact,
                job_id=f"{artifact}/{model}-{system}-n{nodes}",
                module=__name__, call="run_sweep_job",
                params={"model": model, "system": system,
                        "algorithm": algo, "nodes": nodes,
                        "cluster": cluster, "on_ec2": on_ec2},
                algorithm=algo))
    return specs


def run_sweep_job(model: str, system: str, algorithm: Optional[str],
                  nodes: int, cluster: str = "ec2",
                  on_ec2: bool = True) -> Dict:
    factory = CLUSTER_FACTORIES.get(cluster)
    if factory is not None:
        spec = factory(nodes)
    else:
        # Fall back to the full preset registry, which also carries the
        # datacenter-scale variants (ec2-v100-256, ec2-v100-1024).
        from ..cluster import get_cluster
        spec = get_cluster(cluster, num_nodes=nodes)
    result = run_system(system, model, spec, algorithm=algorithm,
                        on_ec2=on_ec2)
    return {"gpus": spec.total_gpus, "throughput": result.throughput}


def assemble_sweep(payloads: Mapping[str, Dict], artifact: str, model: str,
                   systems: Sequence[str],
                   algorithm: Optional[str] = None,
                   node_counts: Sequence[int] = (1, 2, 4, 8, 16)
                   ) -> ThroughputSweep:
    series: Dict[str, List[float]] = {s: [] for s in systems}
    gpus = []
    for nodes in node_counts:
        gpus.append(payloads[f"{artifact}/{model}-{systems[0]}-n{nodes}"]
                    ["gpus"])
        for system in systems:
            series[system].append(
                payloads[f"{artifact}/{model}-{system}-n{nodes}"]
                ["throughput"])
    return ThroughputSweep(
        model=model, algorithm=algorithm, gpu_counts=tuple(gpus),
        series={k: tuple(v) for k, v in series.items()})


def render_sweep(result: ThroughputSweep, title: str) -> str:
    headers = ["system"] + [f"{g} GPUs" for g in result.gpu_counts]
    rows = []
    for system, values in result.series.items():
        rows.append([SYSTEMS[system].label]
                    + [f"{v:,.0f}" for v in values])
    return f"{title}\n" + format_table(headers, rows)


def speedup(result: ThroughputSweep, system: str, baseline: str) -> float:
    return result.speedup(system, baseline)
