"""Compression win/loss across heterogeneous cluster regimes.

Not a paper artifact: this driver exercises the per-node / per-link
cluster model (``docs/CLUSTERS.md``).  The paper's §6 evaluation is
homogeneous; "On the Utility of Gradient Compression" and "Beyond
Throughput and Compression Ratios" (PAPERS.md) argue the compress-or-not
verdict flips precisely when the cluster is *not* uniform.  Each
:func:`scenarios` row is one regime:

* ``baseline`` -- the homogeneous EC2 testbed (the reference point);
* ``straggler-<s>`` -- the same testbed with a deterministic straggler
  tail, severity ``s`` (an eighth of the NICs at ``1/s`` of the rate);
* ``wan-<g>`` -- a quarter of the nodes behind ``g`` Gbps-up WAN links
  with 20 ms latency (the geo-distributed / edge regime);
* ``mixed`` -- the mixed-generation V100 + 1080 Ti fleet.

On every scenario the uncompressed ``ring`` baseline races
``hipress-ring`` (CaSync + selective DGC compression), one job per
(scenario, system) point.  The payloads carry the §3.3 planner's
per-scenario verdicts, so ``assemble`` reports how many gradients flip
their compress/partition decision relative to the homogeneous baseline
-- the refactor's observable effect -- alongside the end-to-end speedup
that decides the win/loss column.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..cluster import ClusterSpec, get_cluster
from ..models import get_model
from ..training import make_plans
from .common import (JobSpec, default_algorithm, execute_serial,
                     format_table, run_system)

__all__ = ["SYSTEMS_UNDER_TEST", "scenarios", "scenario_cluster", "jobs",
           "run_job", "run", "assemble", "render"]

#: (system key, compression algorithm) -- the uncompressed reference and
#: the selective-compression contender.
SYSTEMS_UNDER_TEST: Tuple[Tuple[str, Optional[str]], ...] = (
    ("ring", None),
    ("hipress-ring", "dgc"),
)


def scenarios(num_nodes: int = 16,
              severities: Sequence[float] = (2.0, 4.0, 8.0),
              wan_up_gbps: Sequence[float] = (0.5, 1.0, 4.0)
              ) -> List[Dict[str, Any]]:
    """The heterogeneity regimes under test (JSON rows; see
    :func:`scenario_cluster`)."""
    rows: List[Dict[str, Any]] = [
        {"key": "baseline", "kind": "baseline", "num_nodes": num_nodes,
         "severity": None, "wan_up_gbps": None},
    ]
    for severity in severities:
        rows.append({"key": f"straggler-{severity:g}", "kind": "straggler",
                     "num_nodes": num_nodes, "severity": severity,
                     "wan_up_gbps": None})
    for gbps in wan_up_gbps:
        rows.append({"key": f"wan-{gbps:g}", "kind": "wan",
                     "num_nodes": num_nodes, "severity": None,
                     "wan_up_gbps": gbps})
    rows.append({"key": "mixed", "kind": "mixed", "num_nodes": num_nodes,
                 "severity": None, "wan_up_gbps": None})
    return rows


def scenario_cluster(kind: str, num_nodes: int,
                     severity: Optional[float] = None,
                     wan_up_gbps: Optional[float] = None) -> ClusterSpec:
    """Materialize one scenario row's cluster from its JSON params."""
    if kind == "baseline":
        return get_cluster("ec2-v100", num_nodes=num_nodes)
    if kind == "straggler":
        return get_cluster("ec2-v100-straggler", num_nodes=num_nodes,
                           severity=severity)
    if kind == "wan":
        return get_cluster("wan-edge", num_nodes=num_nodes,
                           wan_up_gbps=wan_up_gbps)
    if kind == "mixed":
        return get_cluster("hetero-mixed", num_nodes=num_nodes)
    raise ValueError(f"unknown scenario kind {kind!r}")


def jobs(num_nodes: int = 16,
         severities: Sequence[float] = (2.0, 4.0, 8.0),
         wan_up_gbps: Sequence[float] = (0.5, 1.0, 4.0),
         model: str = "vgg19") -> List[JobSpec]:
    """One job per (scenario, system) point."""
    specs: List[JobSpec] = []
    for scenario in scenarios(num_nodes=num_nodes, severities=severities,
                              wan_up_gbps=wan_up_gbps):
        for system, algorithm in SYSTEMS_UNDER_TEST:
            specs.append(JobSpec(
                artifact="heterogeneous",
                job_id=f"heterogeneous/{scenario['key']}-{system}",
                module="repro.experiments.heterogeneous",
                params={
                    "model": model,
                    "system": system,
                    "algorithm": algorithm,
                    "kind": scenario["kind"],
                    "num_nodes": scenario["num_nodes"],
                    "severity": scenario["severity"],
                    "wan_up_gbps": scenario["wan_up_gbps"],
                },
                algorithm=algorithm))
    return specs


def run_job(model: str, system: str, algorithm: Optional[str], kind: str,
            num_nodes: int, severity: Optional[float],
            wan_up_gbps: Optional[float]) -> Dict[str, Any]:
    """Run one system on one scenario; compressed systems also report the
    §3.3 planner's per-gradient verdicts for the flip analysis."""
    cluster = scenario_cluster(kind, num_nodes, severity=severity,
                               wan_up_gbps=wan_up_gbps)
    result = run_system(system, model, cluster, algorithm=algorithm)
    payload: Dict[str, Any] = {
        "cluster": cluster.name,
        "num_nodes": cluster.num_nodes,
        "iteration_time": result.iteration_time,
        "comm_ratio": result.comm_ratio,
        "exposed_sync_time": result.exposed_sync_time,
    }
    if algorithm is not None:
        plans = make_plans(get_model(model), cluster,
                           default_algorithm(algorithm), "ring")
        payload["verdicts"] = {
            name: [plan.compress, plan.partitions]
            for name, plan in sorted(plans.items())}
        payload["compressed_gradients"] = sum(
            1 for plan in plans.values() if plan.compress)
    return payload


def assemble(payloads: Mapping[str, Dict],
             num_nodes: int = 16,
             severities: Sequence[float] = (2.0, 4.0, 8.0),
             wan_up_gbps: Sequence[float] = (0.5, 1.0, 4.0),
             model: str = "vgg19") -> Dict[str, Dict]:
    """Fold job payloads into the per-scenario win/loss table.

    Each scenario's entry carries both systems' payloads, the
    compression ``speedup`` (uncompressed / compressed iteration time,
    > 1 means compression wins), and ``verdict_flips`` -- how many
    gradients changed their <compress?, K> verdict relative to the
    homogeneous baseline scenario.
    """
    baseline_key = None
    results: Dict[str, Dict] = {}
    compressed_system = SYSTEMS_UNDER_TEST[1][0]
    plain_system = SYSTEMS_UNDER_TEST[0][0]
    rows = scenarios(num_nodes=num_nodes, severities=severities,
                     wan_up_gbps=wan_up_gbps)
    base_verdicts = None
    for scenario in rows:
        if scenario["kind"] == "baseline":
            baseline_key = scenario["key"]
            base_verdicts = payloads[
                f"heterogeneous/{baseline_key}-{compressed_system}"][
                "verdicts"]
    for scenario in rows:
        key = scenario["key"]
        plain = payloads[f"heterogeneous/{key}-{plain_system}"]
        compressed = payloads[f"heterogeneous/{key}-{compressed_system}"]
        flips = sum(
            1 for name, verdict in compressed["verdicts"].items()
            if base_verdicts.get(name) != verdict)
        results[key] = {
            "scenario": scenario,
            "systems": {plain_system: plain,
                        compressed_system: compressed},
            "speedup": plain["iteration_time"]
            / compressed["iteration_time"],
            "compression_wins": (compressed["iteration_time"]
                                 < plain["iteration_time"]),
            "compressed_gradients": compressed["compressed_gradients"],
            "verdict_flips": flips,
        }
    return results


def run(num_nodes: int = 16,
        severities: Sequence[float] = (2.0, 4.0, 8.0),
        wan_up_gbps: Sequence[float] = (0.5, 1.0, 4.0),
        model: str = "vgg19") -> Dict[str, Dict]:
    kwargs = dict(num_nodes=num_nodes, severities=severities,
                  wan_up_gbps=wan_up_gbps, model=model)
    return assemble(execute_serial(jobs(**kwargs)), **kwargs)


def render(results: Dict[str, Dict]) -> str:
    plain_system = SYSTEMS_UNDER_TEST[0][0]
    compressed_system = SYSTEMS_UNDER_TEST[1][0]
    first = next(iter(results.values()))
    parts = [
        f"Compression win/loss across heterogeneous regimes "
        f"({first['scenario']['num_nodes']} nodes): "
        f"{plain_system} vs {compressed_system}"]
    table = []
    for key, result in results.items():
        systems = result["systems"]
        table.append([
            key,
            f"{systems[plain_system]['iteration_time'] * 1e3:.2f}",
            f"{systems[compressed_system]['iteration_time'] * 1e3:.2f}",
            f"{result['speedup']:.2f}x",
            "win" if result["compression_wins"] else "loss",
            str(result["compressed_gradients"]),
            str(result["verdict_flips"]),
        ])
    parts.append(format_table(
        ["scenario", f"{plain_system} (ms)", f"{compressed_system} (ms)",
         "speedup", "compression", "compressed", "verdict flips"], table))
    flipped = [k for k, r in results.items() if r["verdict_flips"]]
    if flipped:
        parts.append(
            f"  planner verdicts flip vs the homogeneous baseline on: "
            f"{', '.join(flipped)}")
    return "\n".join(parts)
