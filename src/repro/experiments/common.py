"""Shared infrastructure for the paper-reproduction experiment drivers.

Defines the *systems under test* exactly as §6.1 configures them:

* ``byteps`` / ``ring`` -- the no-compression baselines.  BytePS runs over
  TCP on EC2 (it "does not support the Elastic Fabric Adapter", §6.1) and
  over RDMA on the local cluster; everything else uses RDMA everywhere.
* ``byteps-oss`` -- BytePS(OSS-onebit)-style bolted-on compression.
* ``ring-oss`` -- Ring(OSS-DGC)-style coarse compressed allgather.
* ``hipress-ps`` / ``hipress-ring`` -- HiPress: CaSync with pipelining,
  bulk synchronization (coordinator + batch compression), and selective
  compression/partitioning, using CompLL-profiled algorithms.

``run_system`` is the single entry every table/figure driver uses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional

from ..algorithms import get_algorithm
from ..algorithms.base import CompressionAlgorithm
from ..cluster import ClusterSpec
from ..models import ModelSpec, get_model
from ..strategies import (
    BytePS,
    BytePSOSSCompression,
    CaSyncPS,
    CaSyncRing,
    RingAllreduce,
    RingOSSCompression,
    Strategy,
)
from ..training import IterationResult, make_plans, simulate_iteration

__all__ = ["SystemConfig", "SYSTEMS", "run_system", "default_algorithm",
           "ec2_tcp_network", "format_table"]

#: §6.1 default algorithm parameters ("we inherit the parameter settings
#: from their original papers").
ALGORITHM_DEFAULTS: Dict[str, Dict] = {
    "onebit": {},
    "dgc": {"rate": 0.001},
    "terngrad": {"bitwidth": 2},
    "tbq": {"threshold": 0.05},
    "graddrop": {"keep_rate": 0.01},
}


def default_algorithm(name: str, **overrides) -> CompressionAlgorithm:
    params = dict(ALGORITHM_DEFAULTS.get(name, {}))
    params.update(overrides)
    return get_algorithm(name, **params)


def ec2_tcp_network(cluster: ClusterSpec) -> ClusterSpec:
    """BytePS-on-EC2 network: TCP over the 100 Gbps ENA, no RDMA."""
    return replace(cluster, network=replace(
        cluster.network, efficiency=0.35, latency_us=40.0))


@dataclass(frozen=True)
class SystemConfig:
    """One system under test, as configured in §6.1."""

    key: str
    label: str
    strategy_factory: Callable[[], Strategy]
    compression: bool = False
    planner_kind: Optional[str] = None   # selective planning preset
    use_coordinator: bool = False
    batch_compression: bool = False
    tcp_on_ec2: bool = False


SYSTEMS: Dict[str, SystemConfig] = {
    "byteps": SystemConfig(
        key="byteps", label="BytePS",
        strategy_factory=BytePS, tcp_on_ec2=True),
    "ring": SystemConfig(
        key="ring", label="Ring",
        strategy_factory=RingAllreduce),
    "byteps-oss": SystemConfig(
        key="byteps-oss", label="BytePS(OSS)",
        strategy_factory=BytePSOSSCompression, compression=True,
        tcp_on_ec2=True),
    "ring-oss": SystemConfig(
        key="ring-oss", label="Ring(OSS)",
        strategy_factory=RingOSSCompression, compression=True),
    "hipress-ps": SystemConfig(
        key="hipress-ps", label="HiPress-CaSync-PS",
        strategy_factory=CaSyncPS, compression=True,
        planner_kind="ps_colocated", use_coordinator=True,
        batch_compression=True),
    "hipress-ring": SystemConfig(
        key="hipress-ring", label="HiPress-CaSync-Ring",
        strategy_factory=CaSyncRing, compression=True,
        planner_kind="ring", use_coordinator=True,
        batch_compression=True),
}


def run_system(system: str, model, cluster: ClusterSpec,
               algorithm: Optional[str] = None,
               algorithm_params: Optional[Dict] = None,
               on_ec2: bool = True) -> IterationResult:
    """Simulate one iteration of ``model`` under a named system.

    ``model`` may be a ModelSpec or a zoo name.  ``algorithm`` is required
    for compression-enabled systems.
    """
    config = SYSTEMS[system]
    if isinstance(model, str):
        model = get_model(model)
    if config.tcp_on_ec2 and on_ec2:
        cluster = ec2_tcp_network(cluster)
    algo = None
    plans = None
    if config.compression:
        if algorithm is None:
            raise ValueError(f"system {system!r} needs an algorithm")
        algo = default_algorithm(algorithm, **(algorithm_params or {}))
        if config.planner_kind is not None:
            plans = make_plans(model, cluster, algo, config.planner_kind)
    strategy = config.strategy_factory()
    return simulate_iteration(
        model, cluster, strategy, algorithm=algo, plans=plans,
        use_coordinator=config.use_coordinator,
        batch_compression=config.batch_compression)


def format_table(headers, rows) -> str:
    """Plain-text table renderer used by every experiment driver."""
    headers = [str(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))
    sep = "-+-".join("-" * w for w in widths)
    lines = [fmt(headers), sep]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)
