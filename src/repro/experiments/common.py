"""Shared infrastructure for the paper-reproduction experiment drivers.

Defines the *systems under test* exactly as §6.1 configures them:

* ``byteps`` / ``ring`` -- the no-compression baselines.  BytePS runs over
  TCP on EC2 (it "does not support the Elastic Fabric Adapter", §6.1) and
  over RDMA on the local cluster; everything else uses RDMA everywhere.
* ``byteps-oss`` -- BytePS(OSS-onebit)-style bolted-on compression.
* ``ring-oss`` -- Ring(OSS-DGC)-style coarse compressed allgather.
* ``hipress-ps`` / ``hipress-ring`` -- HiPress: CaSync with pipelining,
  bulk synchronization (coordinator + batch compression), and selective
  compression/partitioning, using CompLL-profiled algorithms.

``run_system`` is the single entry every table/figure driver uses.
"""

from __future__ import annotations

import importlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional

from ..algorithms import available_algorithms, get_algorithm
from ..algorithms.base import CompressionAlgorithm
from ..cluster import ClusterSpec, ec2_v100_cluster, local_1080ti_cluster
from ..errors import ConfigError
from ..models import MODEL_NAMES, ModelSpec, get_model
from ..strategies import Strategy, get_strategy
from ..telemetry import TelemetryCollector
from ..training import IterationResult, make_plans, simulate_iteration

__all__ = ["SystemConfig", "SYSTEMS", "run_system", "default_algorithm",
           "ec2_tcp_network", "format_table",
           "JobSpec", "CLUSTER_FACTORIES", "canonical_json",
           "execute_job", "execute_serial"]

#: §6.1 default algorithm parameters ("we inherit the parameter settings
#: from their original papers").
ALGORITHM_DEFAULTS: Dict[str, Dict] = {
    "onebit": {},
    "dgc": {"rate": 0.001},
    "terngrad": {"bitwidth": 2},
    "tbq": {"threshold": 0.05},
    "graddrop": {"keep_rate": 0.01},
}


def default_algorithm(name: str, **overrides) -> CompressionAlgorithm:
    params = dict(ALGORITHM_DEFAULTS.get(name, {}))
    params.update(overrides)
    return get_algorithm(name, **params)


def ec2_tcp_network(cluster: ClusterSpec) -> ClusterSpec:
    """BytePS-on-EC2 network: TCP over the 100 Gbps ENA, no RDMA."""
    return replace(cluster, network=replace(
        cluster.network, efficiency=0.35, latency_us=40.0))


@dataclass(frozen=True)
class SystemConfig:
    """One system under test, as configured in §6.1.

    ``strategy`` is a strategy-registry name; the config resolves it
    through :func:`repro.strategies.get_strategy` at run time, so
    registering a new strategy and adding a SystemConfig is all a new
    system needs.
    """

    key: str
    label: str
    strategy: str                        # strategy-registry name
    compression: bool = False
    planner_kind: Optional[str] = None   # selective planning preset
    use_coordinator: bool = False
    batch_compression: bool = False
    tcp_on_ec2: bool = False

    def strategy_factory(self) -> Strategy:
        """Instantiate this system's strategy from the registry."""
        return get_strategy(self.strategy)


SYSTEMS: Dict[str, SystemConfig] = {
    "byteps": SystemConfig(
        key="byteps", label="BytePS",
        strategy="byteps", tcp_on_ec2=True),
    "ring": SystemConfig(
        key="ring", label="Ring",
        strategy="ring"),
    "byteps-oss": SystemConfig(
        key="byteps-oss", label="BytePS(OSS)",
        strategy="byteps-oss", compression=True,
        tcp_on_ec2=True),
    "ring-oss": SystemConfig(
        key="ring-oss", label="Ring(OSS)",
        strategy="ring-oss", compression=True),
    "hipress-ps": SystemConfig(
        key="hipress-ps", label="HiPress-CaSync-PS",
        strategy="casync-ps", compression=True,
        planner_kind="ps_colocated", use_coordinator=True,
        batch_compression=True),
    "hipress-ring": SystemConfig(
        key="hipress-ring", label="HiPress-CaSync-Ring",
        strategy="casync-ring", compression=True,
        planner_kind="ring", use_coordinator=True,
        batch_compression=True),
}


def run_system(system: str, model, cluster: ClusterSpec,
               algorithm: Optional[str] = None,
               algorithm_params: Optional[Dict] = None,
               on_ec2: bool = True,
               telemetry: Optional[TelemetryCollector] = None,
               policy=None
               ) -> IterationResult:
    """Simulate one iteration of ``model`` under a named system.

    ``model`` may be a ModelSpec or a zoo name.  ``algorithm`` is required
    for compression-enabled systems.  Unknown system/model/algorithm names
    raise :class:`~repro.errors.ConfigError` listing the valid choices.
    ``telemetry`` attaches a collector for this run (see
    :mod:`repro.telemetry`).

    ``policy=`` accepts a :class:`~repro.adaptive.CompressionPolicy` (or
    policy string) instead of the ``algorithm``/``algorithm_params`` pair.
    A fixed policy maps onto the identical static path; an adaptive one
    requires a CaSync system (the AdaptivePass is a SyncPlan-pipeline
    stage) and runs this single iteration under a fresh controller's
    iteration-0 decisions -- use :func:`repro.adaptive.run_policy` for the
    full multi-iteration control loop.
    """
    try:
        config = SYSTEMS[system]
    except KeyError:
        raise ConfigError("system", system, SYSTEMS) from None
    if isinstance(model, str):
        try:
            model = get_model(model)
        except KeyError:
            raise ConfigError("model", model, MODEL_NAMES) from None
    if config.tcp_on_ec2 and on_ec2:
        cluster = ec2_tcp_network(cluster)
    if policy is not None:
        from ..adaptive.policy import CompressionPolicy, parse_policy
        if isinstance(policy, str):
            policy = parse_policy(policy)
        if not isinstance(policy, CompressionPolicy):
            raise ConfigError(
                "policy", policy, ["CompressionPolicy", "policy string"],
                hint="build one via CompressionPolicy.fixed/size_adaptive/"
                     "bandwidth_adaptive/accordion")
        if algorithm is not None or algorithm_params is not None:
            raise ConfigError(
                "algorithm", algorithm, [],
                hint="pass policy= or the legacy algorithm=/"
                     "algorithm_params= kwargs, not both")
        if not config.compression:
            raise ConfigError(
                "system", system,
                [k for k, c in SYSTEMS.items() if c.compression],
                hint="policies pick compression codecs; this system "
                     "does not compress")
        if policy.is_fixed:
            spec = policy.fixed_algorithm()
            algorithm = spec.name
            algorithm_params = dict(spec.params)
        else:
            return _run_system_adaptive(config, model, cluster, policy,
                                        telemetry=telemetry)
    algo = None
    plans = None
    if config.compression:
        if algorithm is None:
            raise ConfigError(
                "algorithm", algorithm, available_algorithms(),
                hint=f"system {system!r} compresses and needs one")
        try:
            algo = default_algorithm(algorithm, **(algorithm_params or {}))
        except KeyError:
            raise ConfigError("algorithm", algorithm,
                              available_algorithms()) from None
        if config.planner_kind is not None:
            plans = make_plans(model, cluster, algo, config.planner_kind)
    strategy = config.strategy_factory()
    return simulate_iteration(
        model, cluster, strategy, algorithm=algo, plans=plans,
        use_coordinator=config.use_coordinator,
        batch_compression=config.batch_compression,
        telemetry=telemetry)


def _run_system_adaptive(config: "SystemConfig", model,
                         cluster: ClusterSpec, policy,
                         telemetry: Optional[TelemetryCollector] = None
                         ) -> IterationResult:
    """One iteration of a CaSync system under an adaptive policy."""
    from ..adaptive.controller import PolicyController
    from ..adaptive.runtime import PLANNER_KINDS
    if config.strategy not in PLANNER_KINDS:
        raise ConfigError(
            "system", config.key,
            [c.key for c in SYSTEMS.values()
             if c.strategy in PLANNER_KINDS],
            hint="adaptive policies run through the SyncPlan pipeline; "
                 "use a CaSync-based system")
    controller = PolicyController(
        policy, model, cluster,
        planner_kind=config.planner_kind or PLANNER_KINDS[config.strategy])
    decisions = controller.decide(0)
    default_key = {"size": "large", "bandwidth": "algorithm",
                   "accordion": "conservative"}[policy.kind]
    strategy = get_strategy(config.strategy, selective=False, adaptive=True)
    return simulate_iteration(
        model, cluster, strategy,
        algorithm=controller.palette[default_key], decisions=decisions,
        use_coordinator=config.use_coordinator,
        batch_compression=config.batch_compression,
        telemetry=telemetry)


# -- job manifests -----------------------------------------------------------
#
# Every figure/table module decomposes its work into independent *jobs*
# (one per strategy x model x cluster point, typically) by declaring a
# ``jobs(**kwargs)`` manifest of :class:`JobSpec` rows.  A job is executed
# by calling ``<module>.<call>(**params)`` in any process -- the params
# are JSON values, the payload it returns must be a JSON value too -- and
# the module's ``assemble(payloads, **kwargs)`` folds the payloads back
# into the structured results its ``run()`` returns.  ``run()`` itself is
# ``assemble(execute_serial(jobs(...)), ...)``, so the serial path and the
# process-parallel :mod:`repro.experiments.runner` execute the *same*
# decomposition; the conformance suite then proves the outputs are
# bit-identical across serial / parallel / cached / resumed runs.

#: Cluster presets jobs may reference by name (factories are not JSON).
CLUSTER_FACTORIES = {
    "ec2": ec2_v100_cluster,
    "local": local_1080ti_cluster,
}


@dataclass(frozen=True)
class JobSpec:
    """One independently executable unit of a figure/table regeneration.

    ``params`` must contain only JSON values (numbers, strings, bools,
    lists, dicts, None) so the spec can cross a process boundary and be
    digested into a stable cache key.  ``algorithm``/``algorithm_params``
    duplicate any compression settings from ``params`` so the runner can
    fold the *instantiated* algorithm's identity token (the GraphCache
    keying discipline from :mod:`repro.casync.lower`) into the job digest.
    """

    artifact: str                 # e.g. "fig7"
    job_id: str                   # unique within a manifest, e.g. "fig7/vgg19-ring-n4"
    module: str                   # dotted module, e.g. "repro.experiments.fig7"
    params: Mapping[str, Any] = field(default_factory=dict)
    call: str = "run_job"
    algorithm: Optional[str] = None
    algorithm_params: Optional[Mapping[str, Any]] = None
    timeout_s: Optional[float] = None

    def resolve(self):
        """The callable this job runs."""
        module = importlib.import_module(self.module)
        return getattr(module, self.call)


def canonical_json(value) -> str:
    """Canonical JSON encoding: sorted keys, no whitespace, exact floats."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=False)


def execute_job(spec: JobSpec):
    """Run one job in-process and return its JSON-normalized payload.

    The round trip through :func:`canonical_json` pins the contract that
    payloads are JSON values: the serial path sees exactly what a worker
    process or a cache hit would deliver (tuples become lists, numpy
    scalars are rejected loudly rather than silently drifting).
    """
    payload = spec.resolve()(**dict(spec.params))
    return json.loads(canonical_json(payload))


def execute_serial(specs) -> Dict[str, Any]:
    """Reference executor: every job in manifest order, in this process."""
    results: Dict[str, Any] = {}
    for spec in specs:
        if spec.job_id in results:
            raise ValueError(f"duplicate job id {spec.job_id!r}")
        results[spec.job_id] = execute_job(spec)
    return results


def format_table(headers, rows) -> str:
    """Plain-text table renderer used by every experiment driver."""
    headers = [str(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))
    sep = "-+-".join("-" * w for w in widths)
    lines = [fmt(headers), sep]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)
