"""Table 1: the motivating measurement.

Training Bert-large (BytePS +/- onebit) and Transformer (Ring +/- DGC) on
16 EC2 nodes / 128 V100s, reporting scaling efficiency and communication
ratio.  The paper's point: even with compression bolted on, scaling barely
improves -- compression needs system support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..cluster import ec2_v100_cluster
from .common import JobSpec, execute_serial, format_table, run_system

__all__ = ["PAPER", "jobs", "run", "run_job", "assemble", "render"]

#: Paper values: (scaling efficiency, communication ratio).
PAPER: Dict[Tuple[str, str], Tuple[float, float]] = {
    ("transformer", "ring"): (0.47, 0.768),
    ("transformer", "ring-oss"): (0.61, 0.703),
    ("bert-large", "byteps"): (0.71, 0.636),
    ("bert-large", "byteps-oss"): (0.76, 0.609),
}

ROWS = [
    ("transformer", "ring", None),
    ("transformer", "ring-oss", "dgc"),
    ("bert-large", "byteps", None),
    ("bert-large", "byteps-oss", "onebit"),
]


@dataclass(frozen=True)
class Table1Row:
    model: str
    system: str
    efficiency: float
    comm_ratio: float
    paper_efficiency: float
    paper_comm_ratio: float


def jobs(num_nodes: int = 16) -> List[JobSpec]:
    """One job per (model, system) row of the table."""
    return [
        JobSpec(artifact="table1",
                job_id=f"table1/{model}-{system}-n{num_nodes}",
                module=__name__,
                params={"model": model, "system": system,
                        "algorithm": algorithm, "num_nodes": num_nodes},
                algorithm=algorithm)
        for model, system, algorithm in ROWS
    ]


def run_job(model: str, system: str, algorithm, num_nodes: int) -> Dict:
    result = run_system(system, model, ec2_v100_cluster(num_nodes),
                        algorithm=algorithm)
    return {"efficiency": result.scaling_efficiency,
            "comm_ratio": result.comm_ratio}


def assemble(payloads: Mapping[str, Dict],
             num_nodes: int = 16) -> List[Table1Row]:
    rows = []
    for spec in jobs(num_nodes=num_nodes):
        payload = payloads[spec.job_id]
        model, system = spec.params["model"], spec.params["system"]
        paper_eff, paper_comm = PAPER[(model, system)]
        rows.append(Table1Row(
            model=model, system=system,
            efficiency=payload["efficiency"],
            comm_ratio=payload["comm_ratio"],
            paper_efficiency=paper_eff, paper_comm_ratio=paper_comm))
    return rows


def run(num_nodes: int = 16) -> List[Table1Row]:
    return assemble(execute_serial(jobs(num_nodes=num_nodes)),
                    num_nodes=num_nodes)


def render(rows: List[Table1Row]) -> str:
    table = format_table(
        ["model", "system", "scaling eff (paper)", "scaling eff (ours)",
         "comm ratio (paper)", "comm ratio (ours)"],
        [[r.model, r.system, f"{r.paper_efficiency:.2f}",
          f"{r.efficiency:.2f}", f"{r.paper_comm_ratio:.1%}",
          f"{r.comm_ratio:.1%}"] for r in rows])
    return "Table 1 -- motivation: compression without system support\n" + table
