"""Table 1: the motivating measurement.

Training Bert-large (BytePS +/- onebit) and Transformer (Ring +/- DGC) on
16 EC2 nodes / 128 V100s, reporting scaling efficiency and communication
ratio.  The paper's point: even with compression bolted on, scaling barely
improves -- compression needs system support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..cluster import ec2_v100_cluster
from .common import format_table, run_system

__all__ = ["PAPER", "run", "render"]

#: Paper values: (scaling efficiency, communication ratio).
PAPER: Dict[Tuple[str, str], Tuple[float, float]] = {
    ("transformer", "ring"): (0.47, 0.768),
    ("transformer", "ring-oss"): (0.61, 0.703),
    ("bert-large", "byteps"): (0.71, 0.636),
    ("bert-large", "byteps-oss"): (0.76, 0.609),
}

ROWS = [
    ("transformer", "ring", None),
    ("transformer", "ring-oss", "dgc"),
    ("bert-large", "byteps", None),
    ("bert-large", "byteps-oss", "onebit"),
]


@dataclass(frozen=True)
class Table1Row:
    model: str
    system: str
    efficiency: float
    comm_ratio: float
    paper_efficiency: float
    paper_comm_ratio: float


def run(num_nodes: int = 16) -> List[Table1Row]:
    cluster = ec2_v100_cluster(num_nodes)
    rows = []
    for model, system, algorithm in ROWS:
        result = run_system(system, model, cluster, algorithm=algorithm)
        paper_eff, paper_comm = PAPER[(model, system)]
        rows.append(Table1Row(
            model=model, system=system,
            efficiency=result.scaling_efficiency,
            comm_ratio=result.comm_ratio,
            paper_efficiency=paper_eff, paper_comm_ratio=paper_comm))
    return rows


def render(rows: List[Table1Row]) -> str:
    table = format_table(
        ["model", "system", "scaling eff (paper)", "scaling eff (ours)",
         "comm ratio (paper)", "comm ratio (ours)"],
        [[r.model, r.system, f"{r.paper_efficiency:.2f}",
          f"{r.efficiency:.2f}", f"{r.paper_comm_ratio:.1%}",
          f"{r.comm_ratio:.1%}"] for r in rows])
    return "Table 1 -- motivation: compression without system support\n" + table
