"""§4.4 compression-performance claims: CompLL vs OSS kernels.

The paper reports (for a 256MB gradient):

* CompLL-TBQ encode runs >12x faster than OSS-TBQ's GPU implementation
  (which takes 38.2 ms);
* CompLL-DGC outperforms the manually optimized OSS-DGC encode by up to
  5.1x;
* CompLL-onebit runs up to 35.6x faster than OSS-onebit's *CPU* encode.

Our GPU is a cost model, so this experiment reproduces the claims at the
model level: CompLL kernels cost what the KernelProfile says (optimized,
fused, bank-conflict-free scans); the OSS counterparts are charged the
paper's measured numbers' structure -- unfused multi-kernel passes for
OSS-GPU implementations and the 35x host penalty for CPU ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..algorithms import DGC, OneBit, TBQ
from ..gpu import V100
from ..models import MB
from .common import format_table

__all__ = ["PAPER", "run", "render", "KernelComparison"]

PAPER = {
    "tbq_oss_encode_ms": 38.2,
    "tbq_speedup": 12.0,
    "dgc_speedup": 5.1,
    "onebit_cpu_speedup": 35.6,
}

#: Structure of the OSS implementations: effective passes over the data
#: and kernel launches (unfused, extra staging copies), versus CompLL's
#: fused operators.
OSS_GPU_SHAPE = {
    # algorithm: (passes multiplier, kernel count, bandwidth efficiency).
    # The efficiency factor models the OSS kernels' uncoalesced access and
    # shared-memory bank conflicts (the defects §5 says CompLL eliminates),
    # calibrated so OSS-TBQ hits the paper's measured 38.2 ms on 256MB.
    "tbq": (14.0, 24, 0.17),  # unfused scan/compact/pack + staging copies
    "dgc": (6.0, 40, 0.38),   # full sort instead of sampled threshold
}
CPU_FACTOR = 35.6


@dataclass(frozen=True)
class KernelComparison:
    algorithm: str
    baseline: str
    compll_ms: float
    oss_ms: float
    speedup: float
    paper_speedup: float


def run(nbytes: int = 256 * MB) -> List[KernelComparison]:
    rows = []
    tbq = TBQ(threshold=0.05)
    compll_tbq = tbq.encode_time(nbytes, V100)
    passes, kernels, eff = OSS_GPU_SHAPE["tbq"]
    oss_tbq = V100.kernel_time(passes * nbytes / eff, kernels=kernels)
    rows.append(KernelComparison(
        "tbq", "OSS-TBQ (GPU)", compll_tbq * 1000, oss_tbq * 1000,
        oss_tbq / compll_tbq, PAPER["tbq_speedup"]))

    dgc = DGC(rate=0.001)
    compll_dgc = dgc.encode_time(nbytes, V100)
    passes, kernels, eff = OSS_GPU_SHAPE["dgc"]
    oss_dgc = V100.kernel_time(passes * nbytes / eff, kernels=kernels)
    rows.append(KernelComparison(
        "dgc", "OSS-DGC (GPU)", compll_dgc * 1000, oss_dgc * 1000,
        oss_dgc / compll_dgc, PAPER["dgc_speedup"]))

    onebit = OneBit()
    compll_onebit = onebit.encode_time(nbytes, V100)
    oss_onebit_cpu = compll_onebit * CPU_FACTOR
    rows.append(KernelComparison(
        "onebit", "OSS-onebit (CPU)", compll_onebit * 1000,
        oss_onebit_cpu * 1000, oss_onebit_cpu / compll_onebit,
        PAPER["onebit_cpu_speedup"]))
    return rows


def render(rows: List[KernelComparison]) -> str:
    table = format_table(
        ["algorithm", "baseline", "CompLL (ms)", "OSS (ms)",
         "speedup (ours)", "speedup (paper)"],
        [[r.algorithm, r.baseline, f"{r.compll_ms:.2f}", f"{r.oss_ms:.2f}",
          f"{r.speedup:.1f}x", f"{r.paper_speedup:.1f}x"] for r in rows])
    return ("§4.4 -- CompLL vs open-source kernel speed "
            "(256MB gradient, V100 cost model)\n" + table)
