"""§4.4 compression-performance claims: CompLL vs OSS kernels.

The paper reports (for a 256MB gradient):

* CompLL-TBQ encode runs >12x faster than OSS-TBQ's GPU implementation
  (which takes 38.2 ms);
* CompLL-DGC outperforms the manually optimized OSS-DGC encode by up to
  5.1x;
* CompLL-onebit runs up to 35.6x faster than OSS-onebit's *CPU* encode.

Our GPU is a cost model, so this experiment reproduces the claims at the
model level: CompLL kernels cost what the KernelProfile says (optimized,
fused, bank-conflict-free scans); the OSS counterparts are charged the
paper's measured numbers' structure -- unfused multi-kernel passes for
OSS-GPU implementations and the 35x host penalty for CPU ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from ..algorithms import DGC, OneBit, TBQ
from ..gpu import V100
from ..models import MB
from .common import JobSpec, execute_serial, format_table

__all__ = ["PAPER", "jobs", "run", "run_job", "assemble", "render",
           "KernelComparison"]

PAPER = {
    "tbq_oss_encode_ms": 38.2,
    "tbq_speedup": 12.0,
    "dgc_speedup": 5.1,
    "onebit_cpu_speedup": 35.6,
}

#: Structure of the OSS implementations: effective passes over the data
#: and kernel launches (unfused, extra staging copies), versus CompLL's
#: fused operators.
OSS_GPU_SHAPE = {
    # algorithm: (passes multiplier, kernel count, bandwidth efficiency).
    # The efficiency factor models the OSS kernels' uncoalesced access and
    # shared-memory bank conflicts (the defects §5 says CompLL eliminates),
    # calibrated so OSS-TBQ hits the paper's measured 38.2 ms on 256MB.
    "tbq": (14.0, 24, 0.17),  # unfused scan/compact/pack + staging copies
    "dgc": (6.0, 40, 0.38),   # full sort instead of sampled threshold
}
CPU_FACTOR = 35.6


@dataclass(frozen=True)
class KernelComparison:
    algorithm: str
    baseline: str
    compll_ms: float
    oss_ms: float
    speedup: float
    paper_speedup: float


#: (algorithm, baseline label, paper speedup key) in table order.
COMPARISONS = (
    ("tbq", "OSS-TBQ (GPU)", "tbq_speedup"),
    ("dgc", "OSS-DGC (GPU)", "dgc_speedup"),
    ("onebit", "OSS-onebit (CPU)", "onebit_cpu_speedup"),
)


def jobs(nbytes: int = 256 * MB) -> List[JobSpec]:
    """One job per CompLL-vs-OSS kernel comparison."""
    return [
        JobSpec(artifact="kernel-speed",
                job_id=f"kernel-speed/{algorithm}-{nbytes}b",
                module=__name__,
                params={"algorithm": algorithm, "nbytes": nbytes},
                algorithm=algorithm)
        for algorithm, _, _ in COMPARISONS
    ]


def run_job(algorithm: str, nbytes: int) -> Dict[str, float]:
    if algorithm == "tbq":
        compll_s = TBQ(threshold=0.05).encode_time(nbytes, V100)
    elif algorithm == "dgc":
        compll_s = DGC(rate=0.001).encode_time(nbytes, V100)
    elif algorithm == "onebit":
        compll_s = OneBit().encode_time(nbytes, V100)
    else:
        raise ValueError(f"unknown kernel-speed algorithm {algorithm!r}")
    if algorithm in OSS_GPU_SHAPE:
        passes, kernels, eff = OSS_GPU_SHAPE[algorithm]
        oss_s = V100.kernel_time(passes * nbytes / eff, kernels=kernels)
    else:
        oss_s = compll_s * CPU_FACTOR
    return {"compll_s": compll_s, "oss_s": oss_s}


def assemble(payloads: Mapping[str, Dict[str, float]],
             nbytes: int = 256 * MB) -> List[KernelComparison]:
    rows = []
    for algorithm, baseline, paper_key in COMPARISONS:
        payload = payloads[f"kernel-speed/{algorithm}-{nbytes}b"]
        compll_s, oss_s = payload["compll_s"], payload["oss_s"]
        rows.append(KernelComparison(
            algorithm, baseline, compll_s * 1000, oss_s * 1000,
            oss_s / compll_s, PAPER[paper_key]))
    return rows


def run(nbytes: int = 256 * MB) -> List[KernelComparison]:
    return assemble(execute_serial(jobs(nbytes=nbytes)), nbytes=nbytes)


def render(rows: List[KernelComparison]) -> str:
    table = format_table(
        ["algorithm", "baseline", "CompLL (ms)", "OSS (ms)",
         "speedup (ours)", "speedup (paper)"],
        [[r.algorithm, r.baseline, f"{r.compll_ms:.2f}", f"{r.oss_ms:.2f}",
          f"{r.speedup:.1f}x", f"{r.paper_speedup:.1f}x"] for r in rows])
    return ("§4.4 -- CompLL vs open-source kernel speed "
            "(256MB gradient, V100 cost model)\n" + table)
