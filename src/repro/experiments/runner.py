"""Parallel, resumable experiment runner with content-addressed caching.

Every figure/table module decomposes its work into independent jobs (a
``jobs()`` manifest of :class:`~repro.experiments.common.JobSpec`), runs
each job to a JSON payload (``run_job``), and folds the payloads back
into its result objects (``assemble``).  This module is the orchestrator
on top of that protocol:

* :class:`ExperimentRunner` executes a batch of job specs either
  in-process (``max_workers=0``) or across a ``ProcessPoolExecutor``,
  with per-job timeouts and *typed* failure capture -- a worker never
  takes the run down, it reports ``error``/``timeout``/``crash``.
* :class:`ResultCache` memoizes each job's payload on disk under a
  content-addressed digest (:func:`job_digest`) covering the code
  version, the job's parameters, the pass-pipeline configuration, and
  the compression algorithm's identity -- the same keying discipline as
  :func:`repro.casync.lower.cache_key`.  A warm cache re-run executes
  zero jobs.
* :class:`RunJournal` records the run as append-only JSON lines, so an
  interrupted regeneration is *resumable*: ``--resume`` replays
  completed jobs from the cache and only executes the remainder.

Bit-identity is by construction, not luck: the serial path
(``module.run()``) is itself ``assemble(execute_serial(jobs()))``, and
``execute_job`` canonicalizes every payload through one JSON round-trip,
so a payload computed in-process, in a worker, or read back from the
cache is the same JSON value.  ``tests/test_runner_conformance.py``
locks this in for every artifact.

Wall-clock note: this module intentionally reads the *host* clock
(``time.perf_counter``) -- it measures the harness itself (job latency,
speedup, progress), never simulated behavior.  All simulated timings
still come exclusively from the event loop; see ``.simlint-allow``.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from ..casync.lower import _algorithm_token
from ..casync.passes import PassConfig
from . import (adaptive, elastic, fig7, fig8, fig9, fig10, fig11, fig12,
               fig13, heterogeneous,
               kernel_speed, table1, table5, table6, table7)
from .common import JobSpec, canonical_json, default_algorithm, execute_job

__all__ = [
    "ArtifactPlan",
    "ExperimentRunner",
    "JobFailure",
    "JobOutcome",
    "ResultCache",
    "RunJournal",
    "RunReport",
    "artifact_plans",
    "code_token",
    "job_digest",
    "run_artifacts",
]

#: Protocol version folded into every digest; bump to invalidate all
#: cached payloads when the payload contract itself changes.
DIGEST_VERSION = 1


# ---------------------------------------------------------------------------
# Content-addressed job identity


def _iter_source_files() -> List[Path]:
    root = Path(__file__).resolve().parents[1]  # src/repro
    return sorted(p for p in root.rglob("*")
                  if p.suffix in (".py", ".cll") and p.is_file())


_CODE_TOKEN: Optional[str] = None


def code_token() -> str:
    """Digest of every source file under ``repro`` (cached per process).

    Any edit to the simulator, an algorithm, or an experiment module
    changes this token and therefore every job digest -- stale cached
    payloads can never be served across code versions.
    """
    global _CODE_TOKEN
    if _CODE_TOKEN is None:
        h = hashlib.sha256()
        root = Path(__file__).resolve().parents[1]
        for path in _iter_source_files():
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _CODE_TOKEN = h.hexdigest()
    return _CODE_TOKEN


def _spec_algorithm_token(spec: JobSpec) -> Optional[Tuple]:
    if spec.algorithm is None:
        return None
    algorithm = default_algorithm(spec.algorithm,
                                  **dict(spec.algorithm_params or {}))
    return _algorithm_token(algorithm)


def job_digest(spec: JobSpec,
               pass_config: Optional[PassConfig] = None) -> str:
    """Content address of one job's payload.

    Follows the :func:`repro.casync.lower.cache_key` discipline: the
    digest covers everything the payload may depend on -- code version,
    the callable's identity, all parameters, the pass-pipeline tuning
    constants, and the (recursively tokenized) compression algorithm.
    """
    config = pass_config if pass_config is not None else PassConfig()
    identity = {
        "version": DIGEST_VERSION,
        "code": code_token(),
        "artifact": spec.artifact,
        "job_id": spec.job_id,
        "module": spec.module,
        "call": spec.call,
        "params": dict(spec.params),
        "pass_config": list(config.token()),
        "algorithm": _spec_algorithm_token(spec),
    }
    return hashlib.sha256(canonical_json(identity).encode()).hexdigest()


# ---------------------------------------------------------------------------
# On-disk payload cache


class ResultCache:
    """Content-addressed payload store: ``<dir>/<d[:2]>/<digest>.json``.

    Writes are atomic (temp file + ``os.replace``), so a crashed or
    killed run never leaves a truncated entry -- at worst the payload is
    missing and gets recomputed.  Corrupt entries read as misses.
    """

    def __init__(self, directory: os.PathLike):
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    def path(self, digest: str) -> Path:
        return self.directory / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> Optional[Any]:
        path = self.path(digest)
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return record["payload"]

    def put(self, digest: str, job_id: str, payload: Any) -> None:
        path = self.path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = canonical_json(
            {"digest": digest, "job_id": job_id, "payload": payload})
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(record)
        os.replace(tmp, path)

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("??/*.json"))


# ---------------------------------------------------------------------------
# Run journal (resumability)


class RunJournal:
    """Append-only JSONL record of a run's progress.

    One line per event: ``run_start``, ``job_done`` (with the job's
    digest and status), ``interrupted``, ``run_complete``.  A resumed
    run reads the journal to learn which jobs already finished and
    fetches their payloads from the cache by digest.
    """

    def __init__(self, path: os.PathLike):
        self.path = Path(path)

    def append(self, event: Dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(canonical_json(event) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def events(self) -> List[Dict[str, Any]]:
        try:
            text = self.path.read_text()
        except OSError:
            return []
        events = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                continue  # torn final line from a crash
        return events

    def completed(self) -> Dict[str, str]:
        """job_id -> digest for every successfully finished job."""
        done = {}
        for event in self.events():
            if event.get("event") == "job_done" and \
                    event.get("status") == "ok":
                done[event["job_id"]] = event["digest"]
        return done


# ---------------------------------------------------------------------------
# Typed outcomes


@dataclass(frozen=True)
class JobFailure:
    """One job's typed failure: it never tears down the whole run."""

    job_id: str
    kind: str                   # "error" | "timeout" | "crash"
    error_type: str
    message: str


@dataclass(frozen=True)
class JobOutcome:
    job_id: str
    digest: str
    status: str                 # "ok" | "cached" | "resumed" | failure kind
    duration_s: float = 0.0


@dataclass
class RunReport:
    """What a batch run produced, and how."""

    payloads: Dict[str, Any] = field(default_factory=dict)
    outcomes: List[JobOutcome] = field(default_factory=list)
    failures: List[JobFailure] = field(default_factory=list)
    executed: int = 0
    cache_hits: int = 0
    resumed: int = 0
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_on_failure(self) -> None:
        if self.failures:
            lines = [f"  {f.job_id}: [{f.kind}] {f.error_type}: {f.message}"
                     for f in self.failures]
            raise RuntimeError(
                f"{len(self.failures)} job(s) failed:\n" + "\n".join(lines))


# ---------------------------------------------------------------------------
# Worker-side execution (subprocess entry point)


def _spec_to_wire(spec: JobSpec) -> Dict[str, Any]:
    return {"artifact": spec.artifact, "job_id": spec.job_id,
            "module": spec.module, "params": dict(spec.params),
            "call": spec.call, "algorithm": spec.algorithm,
            "algorithm_params": (None if spec.algorithm_params is None
                                 else dict(spec.algorithm_params)),
            "timeout_s": spec.timeout_s}


def _spec_from_wire(wire: Mapping[str, Any]) -> JobSpec:
    return JobSpec(**wire)


class _JobTimeout(Exception):
    pass


def _raise_timeout(signum, frame):
    raise _JobTimeout()


def _execute_wire(wire: Dict[str, Any],
                  timeout_s: Optional[float]) -> Dict[str, Any]:
    """Run one job in a worker process; always returns a tagged status.

    The per-job timeout uses ``SIGALRM``/``setitimer`` (POSIX only; on
    platforms without it the timeout is best-effort skipped).  Raising
    out of here would poison the whole pool, so every exception becomes
    a typed record instead.
    """
    spec = _spec_from_wire(wire)
    effective = spec.timeout_s if spec.timeout_s is not None else timeout_s
    armed = False
    if effective and hasattr(signal, "setitimer"):
        previous = signal.signal(signal.SIGALRM, _raise_timeout)
        signal.setitimer(signal.ITIMER_REAL, effective)
        armed = True
    t0 = time.perf_counter()
    try:
        payload = execute_job(spec)
        return {"status": "ok", "job_id": spec.job_id, "payload": payload,
                "duration_s": time.perf_counter() - t0}
    except _JobTimeout:
        return {"status": "timeout", "job_id": spec.job_id,
                "error_type": "JobTimeout",
                "message": f"exceeded {effective:g}s",
                "duration_s": time.perf_counter() - t0}
    except KeyboardInterrupt:
        raise  # in-process Ctrl-C must reach the journal
    except BaseException as exc:  # typed capture, never propagate
        return {"status": "failed", "job_id": spec.job_id,
                "error_type": type(exc).__name__,
                "message": f"{exc}\n{traceback.format_exc(limit=8)}",
                "duration_s": time.perf_counter() - t0}
    finally:
        if armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


# ---------------------------------------------------------------------------
# The runner


class ExperimentRunner:
    """Execute a batch of job specs with caching, timeouts, telemetry.

    ``max_workers=0`` runs everything in-process (serial); ``>= 1``
    fans out across a ``ProcessPoolExecutor``.  ``progress`` is called
    after every settled job with a small event dict -- the CLI uses it
    for live output, the crash-resume tests use it as a kill point.
    """

    def __init__(self, max_workers: int = 0,
                 cache: Optional[ResultCache] = None,
                 journal: Optional[RunJournal] = None,
                 resume: bool = False,
                 timeout_s: Optional[float] = None,
                 pass_config: Optional[PassConfig] = None,
                 mp_context: Optional[str] = None,
                 telemetry=None,
                 progress: Optional[Callable[[Dict[str, Any]], None]] = None):
        if resume and cache is None:
            raise ValueError("--resume needs the cache: completed jobs are "
                             "reloaded by digest (pass a ResultCache)")
        if max_workers < 0:
            raise ValueError(f"max_workers must be >= 0, got {max_workers}")
        self.max_workers = max_workers
        self.cache = cache
        self.journal = journal
        self.resume = resume
        self.timeout_s = timeout_s
        self.pass_config = pass_config
        self.mp_context = mp_context
        self.telemetry = telemetry
        self.progress = progress

    # -- helpers ----------------------------------------------------------

    def _emit(self, event: Dict[str, Any]) -> None:
        if self.progress is not None:
            self.progress(event)

    def _count(self, name: str) -> None:
        if self.telemetry is not None:
            self.telemetry.counter(name).inc()

    def _journal(self, event: Dict[str, Any]) -> None:
        if self.journal is not None:
            self.journal.append(event)

    def _settle(self, report: RunReport, spec: JobSpec, digest: str,
                status: str, payload: Any, duration_s: float,
                started_at: float, total: int,
                failure: Optional[JobFailure] = None) -> None:
        """Fold one finished job into the report, journal, telemetry."""
        if failure is None:
            report.payloads[spec.job_id] = payload
            if status == "ok" and self.cache is not None:
                self.cache.put(digest, spec.job_id, payload)
        else:
            report.failures.append(failure)
        report.outcomes.append(JobOutcome(
            job_id=spec.job_id, digest=digest, status=status,
            duration_s=duration_s))
        self._journal({"event": "job_done", "job_id": spec.job_id,
                       "digest": digest, "status": status,
                       "duration_s": duration_s})
        if self.telemetry is not None:
            at = time.perf_counter() - started_at
            span = self.telemetry.begin(
                spec.job_id, category="job", track="runner/jobs",
                at=max(0.0, at - duration_s), status=status)
            self.telemetry.finish(span, at)
        self._count(f"runner.jobs.{status}"
                    if status in ("ok", "cached", "resumed") else
                    "runner.jobs.failed")
        self._emit({"event": "job", "job_id": spec.job_id, "status": status,
                    "done": len(report.outcomes), "total": total,
                    "duration_s": duration_s})

    # -- the run ----------------------------------------------------------

    def run(self, specs: Sequence[JobSpec]) -> RunReport:
        started = time.perf_counter()
        specs = list(specs)
        ids = [s.job_id for s in specs]
        if len(ids) != len(set(ids)):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ValueError(f"duplicate job ids: {dupes}")

        if self.telemetry is not None:
            self.telemetry.start_run("experiment-runner")
        report = RunReport()
        digests = {s.job_id: job_digest(s, self.pass_config) for s in specs}
        total = len(specs)
        self._journal({"event": "run_start", "jobs": total,
                       "workers": self.max_workers,
                       "resume": self.resume})

        pending: List[JobSpec] = []
        journal_done = self.journal.completed() if (
            self.resume and self.journal is not None) else {}
        for spec in specs:
            digest = digests[spec.job_id]
            # Resume: trust the journal only if the digest still matches
            # (an edit between runs invalidates the completed record).
            if self.resume and journal_done.get(spec.job_id) == digest:
                payload = self.cache.get(digest)
                if payload is not None:
                    report.resumed += 1
                    report.cache_hits += 1
                    self._count("runner.cache.hit")
                    self._settle(report, spec, digest, "resumed", payload,
                                 0.0, started, total)
                    continue
            if self.cache is not None:
                payload = self.cache.get(digest)
                if payload is not None:
                    report.cache_hits += 1
                    self._count("runner.cache.hit")
                    self._settle(report, spec, digest, "cached", payload,
                                 0.0, started, total)
                    continue
                self._count("runner.cache.miss")
            pending.append(spec)

        try:
            if self.max_workers == 0:
                self._run_serial(report, pending, digests, started, total)
            else:
                self._run_pool(report, pending, digests, started, total)
        except KeyboardInterrupt:
            self._journal({"event": "interrupted",
                           "completed": len(report.outcomes),
                           "jobs": total})
            raise

        report.duration_s = time.perf_counter() - started
        self._journal({"event": "run_complete", "jobs": total,
                       "executed": report.executed,
                       "cache_hits": report.cache_hits,
                       "resumed": report.resumed,
                       "failed": len(report.failures),
                       "duration_s": report.duration_s})
        return report

    def _run_serial(self, report: RunReport, pending: Sequence[JobSpec],
                    digests: Mapping[str, str], started: float,
                    total: int) -> None:
        for spec in pending:
            result = _execute_wire(_spec_to_wire(spec), self.timeout_s)
            self._finish_result(report, spec, digests[spec.job_id], result,
                                result.get("duration_s", 0.0), started,
                                total)

    def _run_pool(self, report: RunReport, pending: Sequence[JobSpec],
                  digests: Mapping[str, str], started: float,
                  total: int) -> None:
        if not pending:
            return
        import multiprocessing
        method = self.mp_context or (
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        ctx = multiprocessing.get_context(method)
        with ProcessPoolExecutor(max_workers=self.max_workers,
                                 mp_context=ctx) as pool:
            futures = {pool.submit(_execute_wire, _spec_to_wire(spec),
                                   self.timeout_s): spec
                       for spec in pending}
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done,
                                      return_when=FIRST_COMPLETED)
                for future in done:
                    spec = futures[future]
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        # The worker died hard (OOM, signal): a typed
                        # crash for this job; unfinished siblings settle
                        # the same way on their own futures.
                        result = {"status": "crash", "job_id": spec.job_id,
                                  "error_type": "BrokenProcessPool",
                                  "message": "worker process died"}
                    self._finish_result(report, spec, digests[spec.job_id],
                                        result,
                                        result.get("duration_s", 0.0),
                                        started, total)

    def _finish_result(self, report: RunReport, spec: JobSpec, digest: str,
                       result: Mapping[str, Any], duration_s: float,
                       started: float, total: int) -> None:
        status = result["status"]
        if status == "ok":
            report.executed += 1
            self._settle(report, spec, digest, "ok", result["payload"],
                         duration_s, started, total)
        else:
            report.executed += 1
            failure = JobFailure(
                job_id=spec.job_id,
                kind="timeout" if status == "timeout"
                else "crash" if status == "crash" else "error",
                error_type=result["error_type"],
                message=result["message"])
            self._settle(report, spec, digest, failure.kind, None,
                         duration_s, started, total, failure=failure)


# ---------------------------------------------------------------------------
# Artifact plans: the full figure/table registry as job manifests


@dataclass(frozen=True)
class ArtifactPlan:
    """One artifact's decomposition: manifest + reassembly + rendering."""

    name: str
    module: Any
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    #: ``assemble`` returns a tuple whose items are separate ``render``
    #: arguments (fig12's two panels).
    render_star: bool = False

    def specs(self) -> List[JobSpec]:
        return list(self.module.jobs(**dict(self.kwargs)))

    def assemble(self, payloads: Mapping[str, Any]) -> Any:
        own = {job.job_id: payloads[job.job_id] for job in self.specs()}
        return self.module.assemble(own, **dict(self.kwargs))

    def render(self, assembled: Any) -> str:
        if self.render_star:
            return self.module.render(*assembled)
        return self.module.render(assembled)


def artifact_plans(quick: bool = False,
                   overrides: Optional[Mapping[str, Mapping[str, Any]]] = None
                   ) -> Dict[str, ArtifactPlan]:
    """Every paper artifact as an :class:`ArtifactPlan`.

    Mirrors the CLI registry: ``quick`` shrinks the clusters.
    ``overrides`` merges extra kwargs into named plans (tests use this
    to shrink fig13's training run).
    """
    nodes = 8 if quick else 16
    sweep_nodes = (4, 8) if quick else (4, 16)
    plans = {
        "adaptive": ArtifactPlan(
            "adaptive", adaptive,
            # quick shrinks the 256-node preset profile to 32 nodes; the
            # full run keeps the preset's native scale (expensive).
            {"num_nodes": nodes, "large_nodes": 32 if quick else None,
             "iterations": 2 if quick else 4, "large_iterations": 2}),
        "table1": ArtifactPlan("table1", table1, {"num_nodes": nodes}),
        "table5": ArtifactPlan("table5", table5),
        "table6": ArtifactPlan("table6", table6),
        "table7": ArtifactPlan("table7", table7),
        "fig7": ArtifactPlan("fig7", fig7, {"node_counts": sweep_nodes}),
        "fig8": ArtifactPlan("fig8", fig8, {"node_counts": sweep_nodes}),
        "fig9": ArtifactPlan("fig9", fig9, {"num_nodes": nodes}),
        "fig10": ArtifactPlan("fig10", fig10, {"num_nodes": nodes}),
        "fig11": ArtifactPlan("fig11", fig11, {"num_nodes": nodes}),
        "fig12": ArtifactPlan("fig12", fig12, {"num_nodes": nodes},
                              render_star=True),
        "fig13": ArtifactPlan("fig13", fig13),
        "heterogeneous": ArtifactPlan(
            "heterogeneous", heterogeneous,
            {"num_nodes": nodes,
             "severities": (4.0,) if quick else (2.0, 4.0, 8.0),
             "wan_up_gbps": (1.0,) if quick else (0.5, 1.0, 4.0)}),
        "elastic": ArtifactPlan(
            "elastic", elastic,
            {"num_nodes": nodes, "epochs": 2 if quick else 3,
             "churns": ("static", "light") if quick
             else ("static", "light", "heavy")}),
        "kernel_speed": ArtifactPlan("kernel_speed", kernel_speed),
    }
    for name, extra in (overrides or {}).items():
        if name not in plans:
            raise KeyError(f"unknown artifact {name!r}; "
                           f"available: {sorted(plans)}")
        plan = plans[name]
        plans[name] = replace(plan, kwargs={**dict(plan.kwargs), **extra})
    return plans


def run_artifacts(names: Optional[Sequence[str]] = None,
                  quick: bool = False,
                  runner: Optional[ExperimentRunner] = None,
                  overrides: Optional[Mapping[str, Mapping[str, Any]]] = None
                  ) -> Tuple[Dict[str, Any], RunReport]:
    """Regenerate artifacts through the runner; one shared job batch.

    Jobs from all selected artifacts execute as a single batch, so
    parallelism crosses artifact boundaries.  Returns
    ``({name: {"result", "text"}}, report)``; raises if any job failed
    (the journal and cache still hold the completed work, so a re-run
    with ``resume`` picks up where it left off).
    """
    plans = artifact_plans(quick=quick, overrides=overrides)
    selected = list(names) if names else sorted(plans)
    unknown = [n for n in selected if n not in plans]
    if unknown:
        raise KeyError(f"unknown artifacts {unknown}; "
                       f"available: {sorted(plans)}")
    runner = runner or ExperimentRunner()
    specs: List[JobSpec] = []
    for name in selected:
        specs.extend(plans[name].specs())
    report = runner.run(specs)
    report.raise_on_failure()
    out = {}
    for name in selected:
        assembled = plans[name].assemble(report.payloads)
        out[name] = {"result": assembled,
                     "text": plans[name].render(assembled)}
    return out, report
