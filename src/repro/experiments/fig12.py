"""Figure 12: impact of network bandwidth and compression rate.

(a) Bert-base with HiPress-CaSync-PS(onebit) on high vs low bandwidth
    (EC2 100/25 Gbps, local 56/10 Gbps): the paper's point is that the
    *speedup over the non-compression baseline* stays similar, i.e.
    HiPress does not need an expensive network.
(b) VGG19 with CaSync-PS, varying TernGrad bitwidth (2/4/8) and DGC rate
    (0.1%/1%/5%): higher rates cost throughput but HiPress still syncs
    fast.  Paper: TernGrad loses 12.8%/23.6% going 2->4->8 bits; DGC loses
    6.7%/11.3% going 0.1%->1%->5%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..cluster import ec2_v100_cluster, local_1080ti_cluster
from .common import JobSpec, execute_serial, format_table, run_system

__all__ = ["PAPER", "jobs", "run_job", "assemble", "run_bandwidth",
           "run_rate", "render"]

#: Fig. 12a grid: (cluster preset, bandwidth settings in Gbps).
BANDWIDTH_GRID = (("ec2", (100.0, 25.0)), ("local", (56.0, 10.0)))
#: Fig. 12b grid.
TERNGRAD_BITWIDTHS = (2, 4, 8)
DGC_RATES = (0.001, 0.01, 0.05)

PAPER = {
    "terngrad_drop": (0.128, 0.236),   # bitwidth 4, 8 vs 2
    "dgc_drop": (0.067, 0.113),        # rate 1%, 5% vs 0.1%
}


@dataclass(frozen=True)
class BandwidthPoint:
    cluster: str
    bandwidth_gbps: float
    hipress_throughput: float
    baseline_throughput: float

    @property
    def speedup(self) -> float:
        return self.hipress_throughput / self.baseline_throughput


def _bandwidth_jobs(num_nodes: int) -> List[JobSpec]:
    specs = []
    for cluster_name, bandwidths in BANDWIDTH_GRID:
        for gbps in bandwidths:
            for system, algo in (("hipress-ps", "onebit"), ("ring", None)):
                specs.append(JobSpec(
                    artifact="fig12",
                    job_id=(f"fig12/bw-{cluster_name}-{gbps:g}gbps-"
                            f"{system}-n{num_nodes}"),
                    module=__name__,
                    params={"kind": "bandwidth", "cluster": cluster_name,
                            "gbps": gbps, "system": system,
                            "algorithm": algo, "num_nodes": num_nodes},
                    algorithm=algo))
    return specs


def _rate_jobs(num_nodes: int) -> List[JobSpec]:
    specs = []
    for bitwidth in TERNGRAD_BITWIDTHS:
        specs.append(JobSpec(
            artifact="fig12",
            job_id=f"fig12/rate-terngrad-{bitwidth}bit-n{num_nodes}",
            module=__name__,
            params={"kind": "rate", "algorithm": "terngrad",
                    "algorithm_params": {"bitwidth": bitwidth},
                    "num_nodes": num_nodes},
            algorithm="terngrad", algorithm_params={"bitwidth": bitwidth}))
    for rate in DGC_RATES:
        specs.append(JobSpec(
            artifact="fig12",
            job_id=f"fig12/rate-dgc-{rate:g}-n{num_nodes}",
            module=__name__,
            params={"kind": "rate", "algorithm": "dgc",
                    "algorithm_params": {"rate": rate},
                    "num_nodes": num_nodes},
            algorithm="dgc", algorithm_params={"rate": rate}))
    return specs


def jobs(num_nodes: int = 16) -> List[JobSpec]:
    """Both panels: bandwidth grid plus compression-rate grid."""
    return _bandwidth_jobs(num_nodes) + _rate_jobs(num_nodes)


def run_job(kind: str, **params) -> Dict:
    if kind == "bandwidth":
        factory = (ec2_v100_cluster if params["cluster"] == "ec2"
                   else local_1080ti_cluster)
        cluster = factory(params["num_nodes"],
                          bandwidth_gbps=params["gbps"])
        result = run_system(params["system"], "bert-base", cluster,
                            algorithm=params["algorithm"],
                            on_ec2=params["cluster"] == "ec2")
        return {"throughput": result.throughput}
    if kind == "rate":
        cluster = local_1080ti_cluster(params["num_nodes"])
        result = run_system("hipress-ps", "vgg19", cluster,
                            algorithm=params["algorithm"],
                            algorithm_params=params["algorithm_params"],
                            on_ec2=False)
        return {"throughput": result.throughput}
    raise ValueError(f"unknown fig12 job kind {kind!r}")


def _assemble_bandwidth(payloads: Mapping[str, Dict],
                        num_nodes: int) -> List[BandwidthPoint]:
    points = []
    for cluster_name, bandwidths in BANDWIDTH_GRID:
        for gbps in bandwidths:
            stem = f"fig12/bw-{cluster_name}-{gbps:g}gbps"
            points.append(BandwidthPoint(
                cluster=cluster_name, bandwidth_gbps=gbps,
                hipress_throughput=payloads[
                    f"{stem}-hipress-ps-n{num_nodes}"]["throughput"],
                baseline_throughput=payloads[
                    f"{stem}-ring-n{num_nodes}"]["throughput"]))
    return points


def _assemble_rate(payloads: Mapping[str, Dict],
                   num_nodes: int) -> List["RatePoint"]:
    points = []
    for bitwidth in TERNGRAD_BITWIDTHS:
        payload = payloads[f"fig12/rate-terngrad-{bitwidth}bit-n{num_nodes}"]
        points.append(RatePoint("terngrad", f"{bitwidth}-bit",
                                payload["throughput"]))
    for rate in DGC_RATES:
        payload = payloads[f"fig12/rate-dgc-{rate:g}-n{num_nodes}"]
        points.append(RatePoint("dgc", f"{rate:.1%}", payload["throughput"]))
    return points


def assemble(payloads: Mapping[str, Dict], num_nodes: int = 16
             ) -> Tuple[List[BandwidthPoint], List["RatePoint"]]:
    return (_assemble_bandwidth(payloads, num_nodes),
            _assemble_rate(payloads, num_nodes))


def run_bandwidth(num_nodes: int = 16) -> List[BandwidthPoint]:
    """Fig. 12a: Bert-base HiPress vs Ring at high/low bandwidth."""
    return _assemble_bandwidth(execute_serial(_bandwidth_jobs(num_nodes)),
                               num_nodes)


@dataclass(frozen=True)
class RatePoint:
    algorithm: str
    setting: str
    throughput: float


def run_rate(num_nodes: int = 16) -> List[RatePoint]:
    """Fig. 12b: VGG19 CaSync-PS at several compression rates.

    Runs on the local cluster -- the paper uses "the same setup as
    Figure 10", where VGG19's synchronization is not fully hidden, so the
    extra volume of weaker compression actually shows up.
    """
    return _assemble_rate(execute_serial(_rate_jobs(num_nodes)), num_nodes)


def render(bandwidth: List[BandwidthPoint], rates: List[RatePoint]) -> str:
    parts = ["Figure 12a -- HiPress vs Ring at different bandwidths "
             "(paper: HiPress achieves near-optimal performance without "
             "high-end networks)"]
    parts.append(format_table(
        ["cluster", "bandwidth", "HiPress", "Ring", "speedup"],
        [[p.cluster, f"{p.bandwidth_gbps:.0f} Gbps",
          f"{p.hipress_throughput:,.0f}", f"{p.baseline_throughput:,.0f}",
          f"{p.speedup:.2f}x"] for p in bandwidth]))
    by_cluster = {}
    for p in bandwidth:
        by_cluster.setdefault(p.cluster, []).append(p)
    for cluster, points in by_cluster.items():
        high = max(points, key=lambda p: p.bandwidth_gbps)
        low = min(points, key=lambda p: p.bandwidth_gbps)
        drop = 1 - low.hipress_throughput / high.hipress_throughput
        base_drop = 1 - low.baseline_throughput / high.baseline_throughput
        parts.append(
            f"  {cluster}: cutting bandwidth {high.bandwidth_gbps:.0f}->"
            f"{low.bandwidth_gbps:.0f} Gbps costs HiPress {drop:.1%} "
            f"throughput (Ring loses {base_drop:.1%})")

    parts.append("\nFigure 12b -- compression-rate impact on VGG19 "
                 "(throughput, CaSync-PS)")
    parts.append(format_table(
        ["algorithm", "setting", "throughput"],
        [[p.algorithm, p.setting, f"{p.throughput:,.0f}"] for p in rates]))
    tern = [p.throughput for p in rates if p.algorithm == "terngrad"]
    dgc = [p.throughput for p in rates if p.algorithm == "dgc"]
    if len(tern) == 3:
        parts.append(
            f"  terngrad drop 2->4: ours {1 - tern[1] / tern[0]:.1%} "
            f"(paper {PAPER['terngrad_drop'][0]:.1%}); "
            f"2->8: ours {1 - tern[2] / tern[0]:.1%} "
            f"(paper {PAPER['terngrad_drop'][1]:.1%})")
    if len(dgc) == 3:
        parts.append(
            f"  dgc drop 0.1%->1%: ours {1 - dgc[1] / dgc[0]:.1%} "
            f"(paper {PAPER['dgc_drop'][0]:.1%}); "
            f"0.1%->5%: ours {1 - dgc[2] / dgc[0]:.1%} "
            f"(paper {PAPER['dgc_drop'][1]:.1%})")
    return "\n".join(parts)
