"""Figure 12: impact of network bandwidth and compression rate.

(a) Bert-base with HiPress-CaSync-PS(onebit) on high vs low bandwidth
    (EC2 100/25 Gbps, local 56/10 Gbps): the paper's point is that the
    *speedup over the non-compression baseline* stays similar, i.e.
    HiPress does not need an expensive network.
(b) VGG19 with CaSync-PS, varying TernGrad bitwidth (2/4/8) and DGC rate
    (0.1%/1%/5%): higher rates cost throughput but HiPress still syncs
    fast.  Paper: TernGrad loses 12.8%/23.6% going 2->4->8 bits; DGC loses
    6.7%/11.3% going 0.1%->1%->5%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..cluster import ec2_v100_cluster, local_1080ti_cluster
from .common import format_table, run_system

__all__ = ["PAPER", "run_bandwidth", "run_rate", "render"]

PAPER = {
    "terngrad_drop": (0.128, 0.236),   # bitwidth 4, 8 vs 2
    "dgc_drop": (0.067, 0.113),        # rate 1%, 5% vs 0.1%
}


@dataclass(frozen=True)
class BandwidthPoint:
    cluster: str
    bandwidth_gbps: float
    hipress_throughput: float
    baseline_throughput: float

    @property
    def speedup(self) -> float:
        return self.hipress_throughput / self.baseline_throughput


def run_bandwidth(num_nodes: int = 16) -> List[BandwidthPoint]:
    """Fig. 12a: Bert-base HiPress vs Ring at high/low bandwidth."""
    points = []
    for cluster_name, factory, bandwidths in (
            ("ec2", ec2_v100_cluster, (100.0, 25.0)),
            ("local", local_1080ti_cluster, (56.0, 10.0))):
        for gbps in bandwidths:
            cluster = factory(num_nodes, bandwidth_gbps=gbps)
            on_ec2 = cluster_name == "ec2"
            hipress = run_system("hipress-ps", "bert-base", cluster,
                                 algorithm="onebit", on_ec2=on_ec2)
            base = run_system("ring", "bert-base", cluster, on_ec2=on_ec2)
            points.append(BandwidthPoint(
                cluster=cluster_name, bandwidth_gbps=gbps,
                hipress_throughput=hipress.throughput,
                baseline_throughput=base.throughput))
    return points


@dataclass(frozen=True)
class RatePoint:
    algorithm: str
    setting: str
    throughput: float


def run_rate(num_nodes: int = 16) -> List[RatePoint]:
    """Fig. 12b: VGG19 CaSync-PS at several compression rates.

    Runs on the local cluster -- the paper uses "the same setup as
    Figure 10", where VGG19's synchronization is not fully hidden, so the
    extra volume of weaker compression actually shows up.
    """
    cluster = local_1080ti_cluster(num_nodes)
    points = []
    for bitwidth in (2, 4, 8):
        result = run_system("hipress-ps", "vgg19", cluster,
                            algorithm="terngrad",
                            algorithm_params={"bitwidth": bitwidth},
                            on_ec2=False)
        points.append(RatePoint("terngrad", f"{bitwidth}-bit",
                                result.throughput))
    for rate in (0.001, 0.01, 0.05):
        result = run_system("hipress-ps", "vgg19", cluster,
                            algorithm="dgc", algorithm_params={"rate": rate},
                            on_ec2=False)
        points.append(RatePoint("dgc", f"{rate:.1%}", result.throughput))
    return points


def render(bandwidth: List[BandwidthPoint], rates: List[RatePoint]) -> str:
    parts = ["Figure 12a -- HiPress vs Ring at different bandwidths "
             "(paper: HiPress achieves near-optimal performance without "
             "high-end networks)"]
    parts.append(format_table(
        ["cluster", "bandwidth", "HiPress", "Ring", "speedup"],
        [[p.cluster, f"{p.bandwidth_gbps:.0f} Gbps",
          f"{p.hipress_throughput:,.0f}", f"{p.baseline_throughput:,.0f}",
          f"{p.speedup:.2f}x"] for p in bandwidth]))
    by_cluster = {}
    for p in bandwidth:
        by_cluster.setdefault(p.cluster, []).append(p)
    for cluster, points in by_cluster.items():
        high = max(points, key=lambda p: p.bandwidth_gbps)
        low = min(points, key=lambda p: p.bandwidth_gbps)
        drop = 1 - low.hipress_throughput / high.hipress_throughput
        base_drop = 1 - low.baseline_throughput / high.baseline_throughput
        parts.append(
            f"  {cluster}: cutting bandwidth {high.bandwidth_gbps:.0f}->"
            f"{low.bandwidth_gbps:.0f} Gbps costs HiPress {drop:.1%} "
            f"throughput (Ring loses {base_drop:.1%})")

    parts.append("\nFigure 12b -- compression-rate impact on VGG19 "
                 "(throughput, CaSync-PS)")
    parts.append(format_table(
        ["algorithm", "setting", "throughput"],
        [[p.algorithm, p.setting, f"{p.throughput:,.0f}"] for p in rates]))
    tern = [p.throughput for p in rates if p.algorithm == "terngrad"]
    dgc = [p.throughput for p in rates if p.algorithm == "dgc"]
    if len(tern) == 3:
        parts.append(
            f"  terngrad drop 2->4: ours {1 - tern[1] / tern[0]:.1%} "
            f"(paper {PAPER['terngrad_drop'][0]:.1%}); "
            f"2->8: ours {1 - tern[2] / tern[0]:.1%} "
            f"(paper {PAPER['terngrad_drop'][1]:.1%})")
    if len(dgc) == 3:
        parts.append(
            f"  dgc drop 0.1%->1%: ours {1 - dgc[1] / dgc[0]:.1%} "
            f"(paper {PAPER['dgc_drop'][0]:.1%}); "
            f"0.1%->5%: ours {1 - dgc[2] / dgc[0]:.1%} "
            f"(paper {PAPER['dgc_drop'][1]:.1%})")
    return "\n".join(parts)
