"""Typed exceptions for the fault-injection subsystem.

The contract the robustness machinery gives every caller: a synchronization
round either completes (possibly degraded, over the surviving workers) or
raises :class:`SyncAborted` -- it never hangs past its deadline and never
dies with an anonymous error.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = ["FaultError", "TransferError", "PeerDeadError", "SyncAborted",
           "DeadlineExceeded"]


class FaultError(Exception):
    """Base class for every injected-fault consequence."""


class TransferError(FaultError):
    """A point-to-point transfer failed (transient fault, partition, crash).

    Raised *inside* the sending process by the fabric; the retry layer in
    :class:`~repro.casync.tasks.NodeEngine` is its intended consumer.
    """

    def __init__(self, src: int, dst: int, nbytes: float, cause: str):
        super().__init__(f"transfer {src}->{dst} ({nbytes:.0f} B) failed: {cause}")
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.cause = cause


class PeerDeadError(TransferError):
    """Retries exhausted: the peer has been declared dead."""

    def __init__(self, src: int, dst: int, nbytes: float, attempts: int):
        super().__init__(src, dst, nbytes,
                         f"peer declared dead after {attempts} attempts")
        self.attempts = attempts


class SyncAborted(FaultError):
    """A synchronization round could not be completed.

    Carries enough context for chaos-testing harnesses to assert on *why*:
    the simulated time of the abort, the first underlying fault error (if
    any), and the tasks still unfinished.
    """

    def __init__(self, reason: str, at: float,
                 cause: Optional[BaseException] = None,
                 unfinished: Tuple[str, ...] = ()):
        detail = f"sync aborted at t={at:.6f}s: {reason}"
        if unfinished:
            shown = ", ".join(unfinished[:5])
            more = len(unfinished) - 5
            detail += f" ({len(unfinished)} unfinished: {shown}"
            detail += f", +{more} more)" if more > 0 else ")"
        super().__init__(detail)
        self.reason = reason
        self.at = at
        self.cause = cause
        self.unfinished = unfinished


class DeadlineExceeded(SyncAborted):
    """The round's wall-clock (simulated) deadline passed before completion."""

    def __init__(self, deadline: float, at: float,
                 unfinished: Tuple[str, ...] = ()):
        super().__init__(f"deadline {deadline:.6f}s exceeded", at,
                         unfinished=unfinished)
        self.deadline = deadline
