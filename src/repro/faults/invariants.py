"""Invariant checks over completed (or aborted) simulation traces.

These are the safety properties every fault-injection test asserts, no
matter which strategy or schedule ran:

1. **Byte conservation** -- every byte handed to the fabric was either
   delivered or explicitly dropped by a recorded fault cause; nothing
   vanishes and nothing is double-counted.
2. **Exactly-once completion** -- every task in the graph completed
   exactly once (the ledger has one record per task id), and a successful
   round completed *every* task.
3. **Monotone clocks** -- no transfer or task finishes before it starts,
   faults apply in schedule order, and the completion ledger is
   non-decreasing in time.
4. **Drain-or-raise** -- the simulator either drained past the round
   (finish time is a real timestamp) or raised a typed abort; a report
   can never be both finished and aborted.

Each check raises :class:`InvariantViolation` with a precise message;
:func:`check_all` runs the full battery.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, Optional

__all__ = ["InvariantViolation", "check_byte_conservation",
           "check_exactly_once", "check_monotone_clocks",
           "check_drain_or_raise", "check_all"]

#: Drop causes the fault model is allowed to emit.  Anything else in the
#: ledger means the accounting itself has a bug.
KNOWN_DROP_CAUSES = frozenset(
    {"src-dead", "dst-dead", "transient", "abandoned"})


class InvariantViolation(AssertionError):
    """A safety property of the simulation was violated."""


def check_byte_conservation(log: Any, allow_in_flight: bool = False) -> None:
    """attempted == delivered + dropped (+ in-flight only on aborts)."""
    in_flight = log.in_flight()
    if in_flight and not allow_in_flight:
        raise InvariantViolation(
            f"{len(in_flight)} transfers neither delivered nor dropped: "
            f"{in_flight[:5]}")
    in_flight_bytes = sum(r.nbytes for r in in_flight)
    total = log.delivered_bytes + log.dropped_bytes + in_flight_bytes
    if abs(total - log.attempted_bytes) > 1e-6 * max(1.0, log.attempted_bytes):
        raise InvariantViolation(
            f"byte conservation broken: attempted {log.attempted_bytes} != "
            f"delivered {log.delivered_bytes} + dropped {log.dropped_bytes}"
            f" + in-flight {in_flight_bytes}")
    for rec in log.records:
        if rec.outcome == "dropped" and rec.cause not in KNOWN_DROP_CAUSES:
            raise InvariantViolation(
                f"transfer {rec!r} dropped with unrecorded cause {rec.cause!r}")
        if rec.outcome is not None and rec.t_end is None:
            raise InvariantViolation(f"{rec!r} finished without a timestamp")


def check_exactly_once(report: Any, graph: Any) -> None:
    """One completion record per task; a clean round completes them all."""
    counts = Counter(rec.task_id for rec in report.completions)
    duplicated = [tid for tid, n in counts.items() if n > 1]
    if duplicated:
        raise InvariantViolation(
            f"tasks completed more than once: {sorted(duplicated)[:10]}")
    if not report.aborted:
        graph_ids = {t.id for t in graph.tasks}
        missing = graph_ids - set(counts)
        if missing:
            raise InvariantViolation(
                f"round finished but {len(missing)} tasks never completed: "
                f"{sorted(missing)[:10]}")
        extra = set(counts) - graph_ids
        if extra:
            raise InvariantViolation(
                f"completions for tasks not in the graph: {sorted(extra)[:10]}")


def check_monotone_clocks(report: Any, log: Optional[Any] = None,
                          applied: Iterable = ()) -> None:
    """Time never runs backwards anywhere in the trace."""
    last = 0.0
    for rec in report.completions:
        if rec.at < last - 1e-12:
            raise InvariantViolation(
                f"completion ledger goes backwards at task {rec.task_id}: "
                f"{rec.at} < {last}")
        last = max(last, rec.at)
    if report.finish_time + 1e-12 < last:
        raise InvariantViolation(
            f"finish time {report.finish_time} precedes last completion {last}")
    if log is not None:
        for rec in log.records:
            if rec.t_end is not None and rec.t_end + 1e-12 < rec.t_issue:
                raise InvariantViolation(
                    f"{rec!r} finished at {rec.t_end} before issue "
                    f"{rec.t_issue}")
    last_fault = 0.0
    for at, event in applied:
        if at + 1e-12 < last_fault:
            raise InvariantViolation(
                f"fault {event!r} applied at {at} after one at {last_fault}")
        if at + 1e-12 < event.at:
            raise InvariantViolation(
                f"fault {event!r} applied at {at}, before its scheduled "
                f"time {event.at}")
        last_fault = max(last_fault, at)


def check_drain_or_raise(report: Any) -> None:
    """A report is finished XOR aborted, never a hung in-between."""
    if report.aborted and not report.abort_reason:
        raise InvariantViolation("aborted report carries no reason")
    if not report.aborted and report.finish_time < 0:
        raise InvariantViolation(
            f"clean report with impossible finish time {report.finish_time}")


def check_all(report: Any, graph: Optional[Any] = None,
              state: Optional[Any] = None) -> None:
    """Run the full invariant battery over one robust round.

    ``state`` is the injector's :class:`~repro.faults.injector.FaultState`
    (for the transfer ledger and the applied-fault record); both it and
    ``graph`` default to the copies the runner attached to the report.
    """
    if graph is None:
        graph = getattr(report, "graph", None)
    if state is None:
        state = getattr(report, "state", None)
    check_drain_or_raise(report)
    if graph is not None:
        check_exactly_once(report, graph)
    log = getattr(state, "log", None) if state is not None else None
    applied = getattr(state, "applied", ()) if state is not None else ()
    check_monotone_clocks(report, log=log, applied=applied)
    if log is not None:
        check_byte_conservation(log, allow_in_flight=report.aborted)
