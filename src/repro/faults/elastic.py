"""Elastic membership: who participates in which training epoch.

The fault subsystem models what breaks *inside* one synchronization
round; this module models the roster changing *between* rounds -- the
unreliable-internet / volunteer-compute setting (Hivemind, SNIPPETS.md
§1) where nodes join and leave a long-running job.

Two coordinates, one schedule:

* :class:`~repro.faults.schedule.NodeJoin` /
  :class:`~repro.faults.schedule.NodeLeave` events live on the **epoch
  axis**: ``at`` counts epochs.  Joins are admitted at the next epoch
  boundary (``ceil(at)``).  Integral leaves are clean boundary
  departures; a fractional leave at ``e + f`` fail-stops the node at
  fraction ``f`` of epoch ``e``'s horizon (lowered to a
  :class:`~repro.faults.schedule.NodeCrash` inside that epoch).
* Node ids are **global** and stable for the whole run: a fleet of
  ``num_nodes`` machines exists, and each epoch's :class:`Roster` is the
  subset currently enrolled.  The training layer renumbers a roster to
  dense local ranks for the simulator; :meth:`Roster.local_rank` /
  :meth:`Roster.global_id` translate.

A :class:`MembershipSchedule` is data, like a
:class:`~repro.faults.schedule.FaultSchedule`: validation and roster
queries are pure, so two replays of the same schedule are byte-identical
-- the determinism the churn battery (tests/test_elastic_properties.py)
locks in.  Infeasible transitions (leaving a node that is not enrolled,
joining one that already is, shrinking below ``min_roster``) raise a
typed :class:`~repro.errors.ConfigError` at validation time, never a
crash mid-run.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import ConfigError
from .schedule import FaultEvent, FaultSchedule, NodeJoin, NodeLeave

__all__ = [
    "Roster",
    "MembershipSchedule",
    "random_membership_schedule",
    "static_membership",
]

#: Fewest enrolled nodes that still constitute a distributed run.  Data
#: parallelism over one node is a local job: every strategy degenerates,
#: and the elastic loop treats such a roster as infeasible.
MIN_ROSTER = 2


@dataclass(frozen=True)
class Roster:
    """One epoch's enrolled nodes: sorted, unique, global ids."""

    nodes: Tuple[int, ...]

    def __post_init__(self) -> None:
        nodes = tuple(int(n) for n in self.nodes)
        if list(nodes) != sorted(set(nodes)):
            raise ValueError(f"roster must be sorted and unique, got {nodes}")
        if nodes and nodes[0] < 0:
            raise ValueError(f"negative node id in roster {nodes}")
        object.__setattr__(self, "nodes", nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def __contains__(self, node: int) -> bool:
        return node in self.nodes

    def local_rank(self, node: int) -> int:
        """Dense simulator rank of global node ``node`` in this roster."""
        try:
            return self.nodes.index(node)
        except ValueError:
            raise KeyError(f"node {node} is not enrolled in {self.nodes}") \
                from None

    def global_id(self, rank: int) -> int:
        """Global node id behind dense local ``rank``."""
        return self.nodes[rank]

    def token(self) -> str:
        """Stable identity for cache keys: ``r<crc32 of the id list>``.

        Pure in the member set (crc32, like the per-link profile seeds --
        never ``hash()``, which is salted per process).
        """
        blob = ",".join(str(n) for n in self.nodes).encode()
        return f"r{len(self.nodes)}-{zlib.crc32(blob):08x}"

    def __repr__(self) -> str:
        return f"Roster({list(self.nodes)!r})"


def _membership_events(events: Iterable[FaultEvent]
                       ) -> Tuple[FaultEvent, ...]:
    for event in events:
        if not isinstance(event, (NodeJoin, NodeLeave)):
            raise ConfigError(
                "membership-event", type(event).__name__,
                ["NodeJoin", "NodeLeave"],
                hint="fault events (crashes, partitions, slowdowns) attach "
                     "to ClusterSpec.with_faults; a MembershipSchedule "
                     "carries only roster changes")
    return tuple(events)


@dataclass(frozen=True)
class MembershipSchedule:
    """A fleet plus its join/leave history -- the run's roster ground truth.

    ``num_nodes`` is the fleet size (global ids ``0..num_nodes-1``);
    ``initial`` is the epoch-0 roster (default: the whole fleet);
    ``events`` are :class:`NodeJoin` / :class:`NodeLeave` on the epoch
    axis, stably sorted by (epoch, authoring order) like every
    :class:`FaultSchedule`.
    """

    num_nodes: int
    initial: Optional[Tuple[int, ...]] = None
    events: Tuple[FaultEvent, ...] = ()
    min_roster: int = MIN_ROSTER

    def __post_init__(self) -> None:
        if self.num_nodes < self.min_roster:
            raise ConfigError(
                "fleet-size", self.num_nodes, [f">= {self.min_roster}"],
                hint="an elastic fleet needs enough machines to ever form "
                     "a feasible roster")
        if self.initial is None:
            object.__setattr__(self, "initial",
                               tuple(range(self.num_nodes)))
        else:
            object.__setattr__(self, "initial",
                               tuple(int(n) for n in self.initial))
        object.__setattr__(
            self, "events",
            FaultSchedule(_membership_events(self.events)).events)
        self._validate()

    # -- validation -------------------------------------------------------

    def _validate(self) -> None:
        roster = set(self.initial)
        if tuple(sorted(roster)) != self.initial or len(roster) != len(
                self.initial):
            raise ConfigError(
                "initial-roster", list(self.initial), ["sorted unique ids"],
                hint="the epoch-0 roster must be sorted and duplicate-free")
        for node in self.initial:
            if not 0 <= node < self.num_nodes:
                raise ConfigError(
                    "initial-roster", node,
                    [f"0..{self.num_nodes - 1}"],
                    hint="initial roster references a node outside the fleet")
        if len(roster) < self.min_roster:
            raise ConfigError(
                "initial-roster", sorted(roster),
                [f">= {self.min_roster} nodes"],
                hint="the epoch-0 roster is already infeasible")
        for event in self.events:
            node = event.node  # type: ignore[attr-defined]
            if not 0 <= node < self.num_nodes:
                raise ConfigError(
                    "membership-event", node, [f"0..{self.num_nodes - 1}"],
                    hint=f"{event!r} references a node outside the fleet")
            if isinstance(event, NodeJoin):
                if node in roster:
                    raise ConfigError(
                        "membership-event", f"join({node})@{event.at:g}",
                        sorted(set(range(self.num_nodes)) - roster),
                        hint="node is already enrolled at that epoch; a "
                             "join must name an absent node")
                roster.add(node)
            else:
                if node not in roster:
                    raise ConfigError(
                        "membership-event", f"leave({node})@{event.at:g}",
                        sorted(roster),
                        hint="node is not enrolled at that epoch; a leave "
                             "must name a member")
                roster.discard(node)
        # Feasibility at epoch granularity (events at one boundary may
        # transiently swap members, so the invariant holds on entering
        # rosters, not between individual events).
        for epoch in range(self.epochs()):
            entering = self.roster_entering(epoch)
            if len(entering) < self.min_roster:
                raise ConfigError(
                    "membership-event", sorted(entering.nodes),
                    [f">= {self.min_roster} nodes entering epoch {epoch}"],
                    hint=f"the schedule drains the roster below "
                         f"min_roster={self.min_roster} at epoch {epoch}; "
                         f"keep enough members enrolled or add a join "
                         f"before that boundary")

    # -- roster queries ----------------------------------------------------

    @property
    def is_static(self) -> bool:
        """True when the roster never changes (the no-op guarantee path)."""
        return not self.events

    def epochs(self) -> int:
        """Epochs the schedule spans: every event has settled by the end."""
        if not self.events:
            return 1
        return int(math.floor(max(e.at for e in self.events))) + 2

    def roster_entering(self, epoch: int) -> Roster:
        """The roster at the *start* of ``epoch``.

        A join at ``at`` is enrolled from epoch ``ceil(at)`` (a
        fractional join waits for the boundary); a leave at ``at`` is
        gone from epoch ``floor(at) + 1`` if fractional (it dies
        mid-epoch ``floor(at)``) or from epoch ``at`` if integral.
        """
        if epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {epoch}")
        roster = set(self.initial)
        for event in self.events:
            if isinstance(event, NodeJoin):
                if math.ceil(event.at) <= epoch:
                    roster.add(event.node)
            else:
                gone_from = (event.at if float(event.at).is_integer()
                             else math.floor(event.at) + 1)
                if gone_from <= epoch:
                    roster.discard(event.node)
        return Roster(tuple(sorted(roster)))

    def departures_during(self, epoch: int) -> Tuple[Tuple[int, float], ...]:
        """Mid-epoch fail-stops in ``epoch``: ``(global node, fraction)``.

        Only fractional :class:`NodeLeave` events land here; the
        fraction is the point in the epoch's horizon where the node's
        NIC goes dark.
        """
        out: List[Tuple[int, float]] = []
        for event in self.events:
            if isinstance(event, NodeLeave) and \
                    not float(event.at).is_integer() and \
                    math.floor(event.at) == epoch:
                out.append((event.node, event.at - math.floor(event.at)))
        return tuple(out)

    def token(self) -> str:
        """Stable schedule identity (cache keys, provenance digests)."""
        parts = [f"fleet={self.num_nodes}",
                 "init=" + ",".join(str(n) for n in self.initial)]
        for event in self.events:
            kind = "j" if isinstance(event, NodeJoin) else "l"
            parts.append(f"{kind}{event.node}@{event.at:.9g}")  # type: ignore
        return f"m{zlib.crc32(';'.join(parts).encode()):08x}"

    # -- (de)serialization -------------------------------------------------

    def to_json_obj(self) -> Dict[str, Any]:
        """JSON-value form (job params, CLI artifacts)."""
        return {
            "num_nodes": self.num_nodes,
            "initial": list(self.initial),
            "events": [[("join" if isinstance(e, NodeJoin) else "leave"),
                        e.at, e.node]  # type: ignore[attr-defined]
                       for e in self.events],
        }

    @classmethod
    def from_json_obj(cls, obj: Mapping[str, Any]) -> "MembershipSchedule":
        events: List[FaultEvent] = []
        for kind, at, node in obj.get("events", ()):
            if kind == "join":
                events.append(NodeJoin(at=float(at), node=int(node)))
            elif kind == "leave":
                events.append(NodeLeave(at=float(at), node=int(node)))
            else:
                raise ConfigError("membership-event", kind,
                                  ["join", "leave"])
        initial = obj.get("initial")
        return cls(num_nodes=int(obj["num_nodes"]),
                   initial=None if initial is None else tuple(initial),
                   events=tuple(events))


def static_membership(num_nodes: int) -> MembershipSchedule:
    """The degenerate schedule: everyone enrolled, nobody moves."""
    return MembershipSchedule(num_nodes=num_nodes)


def random_membership_schedule(seed: int, num_nodes: int, epochs: int,
                               churn_rate: float = 0.5,
                               rejoin_probability: float = 0.5,
                               min_roster: int = MIN_ROSTER
                               ) -> MembershipSchedule:
    """Draw a deterministic churn history from ``seed``.

    Per epoch boundary each enrolled node (beyond ``min_roster``) leaves
    with probability ``churn_rate / num_nodes`` -- half of those
    departures are mid-epoch fail-stops (fractional ``at``) -- and each
    absent node rejoins with ``rejoin_probability * churn_rate /
    num_nodes``.  The walk tracks feasibility, so every generated
    schedule validates: the roster never shrinks below ``min_roster``.
    Pure in ``(seed, parameters)``: no global randomness, no wall clock.
    """
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    rng = random.Random(seed)
    enrolled = set(range(num_nodes))
    events: List[FaultEvent] = []
    p_leave = min(1.0, churn_rate / max(num_nodes, 1))
    p_join = min(1.0, rejoin_probability * churn_rate / max(num_nodes, 1))
    for epoch in range(epochs):
        for node in sorted(enrolled):
            if len(enrolled) <= min_roster:
                break
            if rng.random() < p_leave:
                if rng.random() < 0.5:
                    frac = rng.uniform(0.1, 0.9)
                    events.append(NodeLeave(at=epoch + frac, node=node))
                else:
                    events.append(NodeLeave(at=float(epoch), node=node))
                enrolled.discard(node)
        for node in sorted(set(range(num_nodes)) - enrolled):
            if rng.random() < p_join:
                events.append(NodeJoin(at=float(epoch + 1), node=node))
                enrolled.add(node)
    return MembershipSchedule(num_nodes=num_nodes, events=tuple(events),
                              min_roster=min_roster)
