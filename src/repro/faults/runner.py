"""Fault-tolerant task-graph execution: degradation, deadlines, reporting.

:func:`run_graph_robust` is the chaos-ready sibling of
:func:`repro.casync.tasks.run_graph`.  Beyond arming and draining the
graph it provides:

* a **failure detector**: peers declare a node dead when their retry
  budget for it is exhausted (fed by the engines' robust sends), or when
  the heartbeat timeout elapses after a ground-truth crash;
* **graceful degradation**: on a declared death the
  :class:`DegradationController` re-plans the dead node's aggregation
  duties onto its deterministic substitute and drops work that died with
  the node (a dead worker's own contribution), so the surviving workers
  still finish the round;
* a **deadline**: the round either completes or raises a typed
  :class:`~repro.faults.errors.SyncAborted` -- it can never hang forever;
* a **completion ledger** every invariant check reads.

This module deliberately duck-types the task graph (no import of
``repro.casync``) so the two packages stay import-cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..sim import Environment, Event, SimulationError
from .errors import DeadlineExceeded, FaultError, SyncAborted
from .membership import Membership

__all__ = ["run_graph_robust", "DegradationController", "RobustSyncReport",
           "CompletionRecord"]

#: Task kinds a surviving substitute can take over from a dead node.
_REASSIGNABLE_KINDS = ("encode", "decode", "merge", "copy", "cpu")


@dataclass(frozen=True)
class CompletionRecord:
    """One task's completion, as observed by the runner's ledger."""

    task_id: int
    at: float
    node: int
    kind: str
    label: str
    ok: bool
    dropped: bool


@dataclass
class RobustSyncReport:
    """Everything a chaos test wants to assert about one robust round."""

    finish_time: float = 0.0
    completions: List[CompletionRecord] = field(default_factory=list)
    reassigned_tasks: int = 0
    dropped_tasks: int = 0
    declared_dead: Tuple[int, ...] = ()
    retries: int = 0
    aborted: bool = False
    abort_reason: str = ""
    #: The executed graph and the injector's FaultState, attached so the
    #: invariant checker can audit a round from the report alone.
    graph: Any = None
    state: Any = None

    @property
    def degraded(self) -> bool:
        return bool(self.declared_dead) or self.dropped_tasks > 0


class DegradationController:
    """Re-plans a graph around declared deaths.

    On ``membership.declare_dead(d)``:

    * compute/CPU tasks hosted on ``d`` whose inputs survived are
      *reassigned* to ``route(d)`` -- the dead aggregator's partitions are
      aggregated by its substitute over the surviving workers;
    * sends from ``d``, notifies on ``d``, and tasks whose inputs died
      with ``d`` (an unfired ready-event of a dead node) are *dropped*:
      their completion events fire so dependents unblock, with the task
      marked ``dropped`` for the trace and the invariant checker;
    * in-flight sends *to* ``d`` re-route themselves (the engines consult
      ``membership.route`` on every attempt), so no action is needed here.
    """

    def __init__(self, env: Environment, graph: Any,
                 engines: Sequence[Any], membership: Membership,
                 node_events: Optional[Dict[int, Iterable[Event]]] = None,
                 enabled: bool = True):
        self.env = env
        self.graph = graph
        self.engines = {e.node: e for e in engines}
        self.membership = membership
        self.node_events = {n: list(evs)
                            for n, evs in (node_events or {}).items()}
        self.enabled = enabled
        self.reassigned = 0
        self.dropped = 0
        membership.on_death(self._on_death)

    # -- death handling ---------------------------------------------------

    def _on_death(self, node: int) -> None:
        engine = self.engines.get(node)
        if engine is not None and not engine.halted:
            # Declared dead before (or without) a ground-truth crash: stop
            # executing on it anyway -- the cluster has excommunicated it.
            engine.halt()
        dead_inputs = self._unfired_events_of_dead_nodes()
        deps = getattr(self.graph, "_deps", {})
        try:
            substitute = self.membership.route(node) if self.enabled else None
        except RuntimeError:
            substitute = None  # everyone is dead; just drop
        for task in self.graph.tasks:
            if task.completed is None or task.completed.triggered:
                continue
            if task.node != node:
                continue
            salvageable = (
                substitute is not None
                and task.kind in _REASSIGNABLE_KINDS
                and not self._needs_dead_input(deps.get(task.id, ()),
                                               dead_inputs))
            if salvageable:
                self._reassign(task, substitute, engine)
            else:
                self._drop(task)

    def _unfired_events_of_dead_nodes(self) -> set:
        dead = set()
        for node in self.membership.dead():
            for event in self.node_events.get(node, ()):
                if not event.triggered:
                    dead.add(id(event))
        return dead

    @staticmethod
    def _needs_dead_input(deps: Iterable[Any], dead_inputs: set) -> bool:
        # Only raw Events (a node's local gradient-ready signal) can die
        # with their node; Task deps re-plan via their own _on_death pass.
        return any(id(dep) in dead_inputs for dep in deps
                   if isinstance(dep, Event))

    def _reassign(self, task: Any, substitute: int, engine: Any) -> None:
        task.node = substitute
        self.reassigned += 1
        if engine is not None and task in engine.orphans:
            # Already dispatched to the dead engine: hand it straight to
            # the substitute.  Undispatched tasks re-route on their own
            # (arm()'s dispatch closure reads task.node at fire time).
            engine.orphans.remove(task)
            self.engines[substitute].dispatch(task)

    def _drop(self, task: Any) -> None:
        task.dropped = True
        task.finished_at = self.env.now
        self.dropped += 1
        task.completed.succeed()


def run_graph_robust(env: Environment, graph: Any, engines: Sequence[Any],
                     membership: Membership,
                     injector: Optional[Any] = None,
                     deadline_s: Optional[float] = None,
                     degradation: bool = True,
                     heartbeat_timeout_s: float = 0.02,
                     node_events: Optional[Dict[int, Iterable[Event]]] = None
                     ) -> RobustSyncReport:
    """Arm and execute ``graph`` under faults; completes or raises SyncAborted.

    The returned :class:`RobustSyncReport` carries the completion ledger
    (for the invariant checker), degradation counters, and the finish
    time.  On abort the same report is attached to the raised
    :class:`SyncAborted` as ``exc.report``.
    """
    report = RobustSyncReport(
        graph=graph, state=injector.state if injector is not None else None)
    controller = DegradationController(env, graph, engines, membership,
                                       node_events=node_events,
                                       enabled=degradation)

    completions = graph.arm(list(engines))
    for task in graph.tasks:
        def _record(event, task=task):
            report.completions.append(CompletionRecord(
                task_id=task.id, at=env.now, node=task.node, kind=task.kind,
                label=task.label, ok=bool(event.ok),
                dropped=bool(task.dropped)))

        if task.completed.callbacks is not None:
            task.completed.callbacks.append(_record)

    if injector is not None and heartbeat_timeout_s is not None:
        def _detect(node: int) -> None:
            def detector():
                yield env.timeout(heartbeat_timeout_s)
                # A fast restart beats the heartbeat: no declaration.
                if injector.state.is_dead(node):
                    membership.declare_dead(node)

            env.process(detector(), name=f"heartbeat-detector@{node}")

        injector.on_crash(_detect)
        # Crashes that already happened (e.g. the graph is armed mid-run)
        # get a detector too.
        for node in sorted(injector.state.dead):
            _detect(node)

    def _unfinished() -> Tuple[str, ...]:
        return tuple(f"{t.kind}:{t.label}@{t.node}" for t in graph.tasks
                     if t.completed is not None
                     and not t.completed.triggered)

    def waiter():
        barrier = env.all_of(completions)
        try:
            if deadline_s is None:
                yield barrier
            else:
                timer = env.timeout(deadline_s)
                yield env.any_of([barrier, timer])
                if not (barrier.triggered and barrier.ok):
                    raise DeadlineExceeded(deadline_s, env.now,
                                           unfinished=_unfinished())
        except SyncAborted:
            raise
        except FaultError as exc:
            raise SyncAborted("a peer died and degradation is disabled"
                              if not degradation else
                              "unrecoverable fault during synchronization",
                              env.now, cause=exc,
                              unfinished=_unfinished()) from exc
        return env.now

    process = env.process(waiter(), name="robust-graph-waiter")
    try:
        finish = env.run_until_complete(process)
    except SyncAborted as exc:
        report.aborted = True
        report.abort_reason = exc.reason
        report.finish_time = env.now
        _finalize(report, engines, membership, controller)
        exc.report = report
        raise
    except SimulationError as exc:
        # The agenda drained with the round incomplete: a deadlock.  The
        # typed-abort contract holds even for robustness-machinery bugs.
        report.aborted = True
        report.abort_reason = f"deadlock: {exc}"
        report.finish_time = env.now
        _finalize(report, engines, membership, controller)
        aborted = SyncAborted("deadlock", env.now, cause=exc,
                              unfinished=_unfinished())
        aborted.report = report
        raise aborted from exc

    report.finish_time = finish
    _finalize(report, engines, membership, controller)
    return report


def _finalize(report: RobustSyncReport, engines: Sequence[Any],
              membership: Membership,
              controller: DegradationController) -> None:
    report.reassigned_tasks = controller.reassigned
    report.dropped_tasks = sum(1 for rec in report.completions if rec.dropped)
    report.declared_dead = membership.dead()
    report.retries = sum(getattr(e, "retries", 0) for e in engines)
