"""Retry policy: per-transfer timeouts with bounded exponential backoff.

One policy object parameterizes every robust send in an iteration.  All
choices are deterministic -- no jitter -- because the simulator's value is
reproducibility: a flaky schedule must shrink to a minimal failing case.
(Real deployments would add jitter; the discrete-event model serializes
contention explicitly, so synchronized retries cannot livelock here.)

The per-attempt timeout is *expectation-scaled*: ``timeout_factor`` times
the uncontended transfer time for that message size, floored by
``min_timeout_s``.  A 1 KB control message therefore times out in
microseconds while a 512 MB bucket gets seconds, without any per-site
tuning.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout / backoff / retry-budget knobs for robust transfers.

    max_attempts: total tries per logical transfer (first try included).
    timeout_factor: per-attempt timeout as a multiple of the uncontended
        expected transfer time (must cover queueing behind healthy peers;
        8x is conservative for the bursty sync phase).
    min_timeout_s: floor so latency-bound small messages are not declared
        lost by scheduling noise.
    backoff_base_s: wait after the first failed attempt.
    backoff_factor: multiplier per subsequent failure (exponential).
    backoff_cap_s: upper bound on a single backoff wait.
    """

    max_attempts: int = 4
    timeout_factor: float = 8.0
    min_timeout_s: float = 2e-3
    backoff_base_s: float = 1e-3
    backoff_factor: float = 2.0
    backoff_cap_s: float = 50e-3

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout_factor <= 0:
            raise ValueError("timeout_factor must be positive")
        if self.min_timeout_s <= 0:
            raise ValueError("min_timeout_s must be positive")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff times must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def attempt_timeout(self, expected_s: float, attempt: int) -> float:
        """Timeout for ``attempt`` (0-based) of a transfer expected to take
        ``expected_s`` uncontended.  Later attempts get linearly more slack:
        a congested-but-alive peer should be waited out, not declared dead.
        """
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        base = max(self.min_timeout_s, self.timeout_factor * expected_s)
        return base * (1 + attempt)

    def backoff(self, failures: int) -> float:
        """Wait before the retry following the ``failures``-th failure
        (1-based: after the first failure pass 1)."""
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        wait = self.backoff_base_s * self.backoff_factor ** (failures - 1)
        return min(wait, self.backoff_cap_s)

    @classmethod
    def aggressive(cls) -> "RetryPolicy":
        """Fail fast: chaos tests that want quick dead declarations."""
        return cls(max_attempts=2, timeout_factor=4.0, min_timeout_s=5e-4,
                   backoff_base_s=2e-4, backoff_cap_s=2e-3)

    @classmethod
    def patient(cls) -> "RetryPolicy":
        """Ride out long partitions before giving up on a peer."""
        return cls(max_attempts=6, timeout_factor=16.0, min_timeout_s=5e-3,
                   backoff_base_s=5e-3, backoff_cap_s=200e-3)
