"""Cluster membership: the *runtime's* view of who is alive.

Ground truth (the :class:`~repro.faults.injector.FaultState`) knows exactly
when a node crashed; real systems do not.  Peers only learn about a death
by timing out on it, which is exactly how this membership service is fed:
the retry layer calls :meth:`declare_dead` after exhausting its attempts.

Membership also owns the *re-plan route*: once ``d`` is declared dead,
``route(d)`` names the surviving node that takes over ``d``'s aggregation
duties (deterministically: the next live rank after ``d``, wrapping).  All
of the graceful-degradation machinery keys off this one mapping.
"""

from __future__ import annotations

from typing import Callable, List, Set, Tuple

__all__ = ["Membership"]


class Membership:
    """Live-node tracking plus deterministic dead-node substitution."""

    def __init__(self, num_nodes: int):
        if num_nodes < 1:
            raise ValueError("need at least one node")
        self.num_nodes = num_nodes
        self._dead: Set[int] = set()
        self._suspected: Set[int] = set()
        self._on_death: List[Callable[[int], None]] = []

    # -- queries ----------------------------------------------------------

    def is_alive(self, node: int) -> bool:
        return node not in self._dead

    def alive(self) -> Tuple[int, ...]:
        return tuple(n for n in range(self.num_nodes) if n not in self._dead)

    def dead(self) -> Tuple[int, ...]:
        return tuple(sorted(self._dead))

    def suspected(self) -> Tuple[int, ...]:
        return tuple(sorted(self._suspected - self._dead))

    def route(self, node: int) -> int:
        """The node now responsible for ``node``'s duties.

        A live node routes to itself; a dead node routes to the next live
        rank after it (wrapping), chased transitively so cascading deaths
        still converge.  Raises when every node is dead.
        """
        if node not in self._dead:
            return node
        if len(self._dead) >= self.num_nodes:
            raise RuntimeError("every node is dead; nothing to route to")
        candidate = (node + 1) % self.num_nodes
        while candidate in self._dead:
            candidate = (candidate + 1) % self.num_nodes
        return candidate

    # -- state transitions -------------------------------------------------

    def suspect(self, node: int) -> None:
        """Mark ``node`` as suspicious (some retry failed, not yet fatal)."""
        self._check(node)
        self._suspected.add(node)

    def declare_dead(self, node: int) -> bool:
        """Declare ``node`` dead; returns True on the *first* declaration.

        Idempotent: concurrent senders all exhausting retries on the same
        peer trigger the death callbacks exactly once.
        """
        self._check(node)
        if node in self._dead:
            return False
        self._dead.add(node)
        self._suspected.discard(node)
        for callback in list(self._on_death):
            callback(node)
        return True

    def on_death(self, callback: Callable[[int], None]) -> None:
        """Register a callback invoked once per newly declared death."""
        self._on_death.append(callback)

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside [0, {self.num_nodes})")

    def __repr__(self) -> str:
        return (f"<Membership {len(self.alive())}/{self.num_nodes} alive, "
                f"dead={sorted(self._dead)}>")
