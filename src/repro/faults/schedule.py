"""Deterministic, seed-driven fault schedules.

A :class:`FaultSchedule` is an immutable, time-ordered list of fault events
-- the *ground truth* of what goes wrong in a simulated cluster.  It is
data, not behaviour: the :class:`~repro.faults.injector.FaultInjector`
replays it against a live simulation.  Two runs with the same schedule (and
the same workload seed) produce byte-identical event traces, which is what
makes chaos tests reproducible and shrinkable.

Schedules come from three places:

* hand-written lists of events (targeted regression scenarios);
* :func:`random_schedule` -- a seeded generator drawing crash / partition /
  degradation / transient-loss / straggler events from tunable rates;
* experiment configs via ``ClusterSpec.with_faults``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple, Union

__all__ = [
    "FaultEvent",
    "NodeCrash",
    "NodeRestart",
    "NodeJoin",
    "NodeLeave",
    "LinkDegrade",
    "LinkPartition",
    "LinkRestore",
    "TransientSendFailure",
    "GpuSlowdown",
    "FaultSchedule",
    "random_schedule",
]


@dataclass(frozen=True)
class FaultEvent:
    """Base class: something happens at simulated time ``at`` (seconds)."""

    at: float

    def __post_init__(self):
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")

    def involves(self, node: int) -> bool:
        """Whether this event touches ``node`` (for per-node filtering)."""
        return False


@dataclass(frozen=True)
class NodeCrash(FaultEvent):
    """Node ``node`` fail-stops: its engine halts, its NIC goes dark."""

    node: int = 0

    def involves(self, node: int) -> bool:
        return node == self.node


@dataclass(frozen=True)
class NodeRestart(FaultEvent):
    """A previously crashed node comes back (it rejoins *future* rounds;
    peers that already declared it dead do not re-admit it mid-round)."""

    node: int = 0

    def involves(self, node: int) -> bool:
        return node == self.node


@dataclass(frozen=True)
class NodeJoin(FaultEvent):
    """Node ``node`` *joins the membership* (elastic training).

    Unlike the fault events, membership events use the **epoch
    coordinate**: ``at`` counts training epochs, not simulated seconds,
    and a join is admitted at the next epoch boundary (``ceil(at)``) --
    a joiner never enters a round already in flight.  Membership events
    are interpreted by :class:`~repro.faults.elastic.MembershipSchedule`
    / the elastic training loop; the :class:`FaultInjector` (which
    replays wall-clock faults inside one round) rejects them.
    """

    node: int = 0

    def involves(self, node: int) -> bool:
        return node == self.node


@dataclass(frozen=True)
class NodeLeave(FaultEvent):
    """Node ``node`` *leaves the membership* (elastic training).

    ``at`` is the epoch coordinate (see :class:`NodeJoin`).  An integral
    ``at`` is a clean boundary departure: the node is present through
    epoch ``at - 1`` and gone from epoch ``at``.  A fractional part
    ``f`` makes the departure *mid-epoch*: during epoch ``floor(at)``
    the node fail-stops at fraction ``f`` of the epoch's horizon (the
    elastic loop lowers it to a :class:`NodeCrash` inside that epoch's
    fault schedule, reusing the event-cancellation path for the departed
    NIC), and the roster entering the next epoch excludes it.
    """

    node: int = 0

    def involves(self, node: int) -> bool:
        return node == self.node


@dataclass(frozen=True)
class LinkDegrade(FaultEvent):
    """The (src, dst) direction serializes ``factor`` x slower.

    ``factor`` 1.0 restores full speed; values > 1 model congestion,
    retransmission storms, or a flapping switch port.
    """

    src: int = 0
    dst: int = 0
    factor: float = 1.0

    def __post_init__(self):
        super().__post_init__()
        if self.factor < 1.0:
            raise ValueError(f"degrade factor must be >= 1, got {self.factor}")
        if self.src == self.dst:
            raise ValueError("cannot degrade a loopback link")

    def involves(self, node: int) -> bool:
        return node in (self.src, self.dst)


@dataclass(frozen=True)
class LinkPartition(FaultEvent):
    """The (src, dst) direction drops everything until a LinkRestore."""

    src: int = 0
    dst: int = 0

    def __post_init__(self):
        super().__post_init__()
        if self.src == self.dst:
            raise ValueError("cannot partition a loopback link")

    def involves(self, node: int) -> bool:
        return node in (self.src, self.dst)


@dataclass(frozen=True)
class LinkRestore(FaultEvent):
    """Heals a LinkPartition and resets any LinkDegrade on (src, dst)."""

    src: int = 0
    dst: int = 0

    def __post_init__(self):
        super().__post_init__()
        if self.src == self.dst:
            raise ValueError("cannot restore a loopback link")

    def involves(self, node: int) -> bool:
        return node in (self.src, self.dst)


@dataclass(frozen=True)
class TransientSendFailure(FaultEvent):
    """The next ``count`` transfers on (src, dst) issued at/after ``at``
    fail mid-flight (bytes on the wire are lost and accounted as dropped).
    """

    src: int = 0
    dst: int = 0
    count: int = 1

    def __post_init__(self):
        super().__post_init__()
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.src == self.dst:
            raise ValueError("loopback transfers cannot fail")

    def involves(self, node: int) -> bool:
        return node in (self.src, self.dst)


@dataclass(frozen=True)
class GpuSlowdown(FaultEvent):
    """Node ``node``'s GPU runs ``factor`` x slower for ``duration`` seconds
    (``duration`` None means for the rest of the run) -- the straggler that
    BSP turns into a cluster-wide stall (§2.1).
    """

    node: int = 0
    factor: float = 1.0
    duration: Optional[float] = None

    def __post_init__(self):
        super().__post_init__()
        if self.factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1, got {self.factor}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")

    def involves(self, node: int) -> bool:
        return node == self.node


def _max_node(event: FaultEvent) -> int:
    if isinstance(event, (NodeCrash, NodeRestart, NodeJoin, NodeLeave,
                          GpuSlowdown)):
        return event.node
    if isinstance(event, (LinkDegrade, LinkPartition, LinkRestore,
                          TransientSendFailure)):
        return max(event.src, event.dst)
    return -1


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-sorted sequence of fault events.

    Sorting is stable on (time, original position), so schedules built from
    the same event list always replay identically -- the determinism the
    regression tests lock in.
    """

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self):
        # Stable sort by time, preserving authoring order within a tick.
        decorated = sorted(enumerate(self.events), key=lambda p: (p[1].at, p[0]))
        object.__setattr__(self, "events", tuple(ev for _, ev in decorated))

    @classmethod
    def empty(cls) -> "FaultSchedule":
        return cls(())

    @classmethod
    def of(cls, *events: FaultEvent) -> "FaultSchedule":
        return cls(tuple(events))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def horizon(self) -> float:
        """Time of the last scheduled event (0.0 when empty)."""
        return self.events[-1].at if self.events else 0.0

    def validate_for(self, num_nodes: int) -> "FaultSchedule":
        """Raise if any event references a node outside [0, num_nodes)."""
        for event in self.events:
            top = _max_node(event)
            if top >= num_nodes:
                raise ValueError(
                    f"{event!r} references node {top}, but the cluster has "
                    f"only {num_nodes} nodes")
        return self

    def crashes(self) -> Tuple[NodeCrash, ...]:
        return tuple(e for e in self.events if isinstance(e, NodeCrash))

    def involving(self, node: int) -> "FaultSchedule":
        return FaultSchedule(tuple(e for e in self.events if e.involves(node)))

    def shifted(self, delta: float) -> "FaultSchedule":
        """The same faults, ``delta`` seconds later (delta may not push any
        event before t=0)."""
        moved = []
        for event in self.events:
            kwargs = {f: getattr(event, f)
                      for f in event.__dataclass_fields__}
            kwargs["at"] = event.at + delta
            moved.append(type(event)(**kwargs))
        return FaultSchedule(tuple(moved))


def random_schedule(seed: int, num_nodes: int, horizon: float,
                    crash_rate: float = 0.2,
                    partition_rate: float = 0.3,
                    degrade_rate: float = 0.5,
                    transient_rate: float = 1.0,
                    straggler_rate: float = 0.3,
                    restart_probability: float = 0.5,
                    max_events: int = 32) -> FaultSchedule:
    """Draw a deterministic fault schedule from ``seed``.

    Rates are expected event counts over ``horizon`` (a Poisson-ish model:
    each candidate type draws ``Poisson(rate)`` capped by ``max_events``).
    The same (seed, parameters) always yields the same schedule -- the
    generator never consults global randomness or wall-clock time.
    """
    if num_nodes < 2:
        raise ValueError("fault schedules need at least 2 nodes")
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    rng = random.Random(seed)
    events: List[FaultEvent] = []

    def draw_count(rate: float) -> int:
        # Knuth's Poisson sampler is deterministic under random.Random.
        if rate <= 0:
            return 0
        limit = pow(2.718281828459045, -rate)
        k, p = 0, 1.0
        while True:
            p *= rng.random()
            if p <= limit:
                return min(k, max_events)
            k += 1

    def pick_link() -> Tuple[int, int]:
        src = rng.randrange(num_nodes)
        dst = rng.randrange(num_nodes - 1)
        if dst >= src:
            dst += 1
        return src, dst

    for _ in range(draw_count(crash_rate)):
        node = rng.randrange(num_nodes)
        at = rng.uniform(0, horizon)
        events.append(NodeCrash(at=at, node=node))
        if rng.random() < restart_probability:
            events.append(NodeRestart(
                at=at + rng.uniform(0.05, 0.5) * horizon, node=node))

    for _ in range(draw_count(partition_rate)):
        src, dst = pick_link()
        at = rng.uniform(0, horizon * 0.8)
        events.append(LinkPartition(at=at, src=src, dst=dst))
        events.append(LinkRestore(
            at=at + rng.uniform(0.02, 0.3) * horizon, src=src, dst=dst))

    for _ in range(draw_count(degrade_rate)):
        src, dst = pick_link()
        events.append(LinkDegrade(at=rng.uniform(0, horizon), src=src,
                                  dst=dst, factor=rng.uniform(1.5, 16.0)))

    for _ in range(draw_count(transient_rate)):
        src, dst = pick_link()
        events.append(TransientSendFailure(
            at=rng.uniform(0, horizon), src=src, dst=dst,
            count=rng.randint(1, 3)))

    for _ in range(draw_count(straggler_rate)):
        events.append(GpuSlowdown(
            at=rng.uniform(0, horizon * 0.5), node=rng.randrange(num_nodes),
            factor=rng.uniform(1.5, 8.0),
            duration=rng.uniform(0.1, 0.6) * horizon))

    return FaultSchedule(tuple(events))
