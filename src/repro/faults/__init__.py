"""Deterministic fault injection for the synchronization simulator.

The subsystem splits cleanly into ground truth vs. belief vs. policy:

* :mod:`~repro.faults.schedule` -- seed-driven, declarative fault
  schedules (what breaks, when);
* :mod:`~repro.faults.injector` -- replays a schedule against a live run
  and keeps the :class:`FaultState` ground truth plus the byte ledger;
* :mod:`~repro.faults.membership` -- the runtime's *belief* about peer
  liveness, with deterministic dead-node substitution (``route``);
* :mod:`~repro.faults.retry` -- timeout / backoff / retry-budget policy
  for robust transfers;
* :mod:`~repro.faults.runner` -- degradation-aware graph execution that
  completes or raises a typed :class:`SyncAborted`;
* :mod:`~repro.faults.invariants` -- the safety checks every chaos test
  asserts over the resulting trace.

Import-order note: :mod:`repro.casync.tasks` imports from this package,
so nothing here may import ``repro.casync`` (or ``repro.net`` /
``repro.training``, which reach it) at module level.
"""

from .errors import (
    DeadlineExceeded,
    FaultError,
    PeerDeadError,
    SyncAborted,
    TransferError,
)
from .invariants import (
    InvariantViolation,
    check_all,
    check_byte_conservation,
    check_drain_or_raise,
    check_exactly_once,
    check_monotone_clocks,
)
from .elastic import (
    MembershipSchedule,
    Roster,
    random_membership_schedule,
    static_membership,
)
from .membership import Membership
from .retry import RetryPolicy
from .runner import (
    CompletionRecord,
    DegradationController,
    RobustSyncReport,
    run_graph_robust,
)
from .schedule import (
    FaultEvent,
    FaultSchedule,
    GpuSlowdown,
    LinkDegrade,
    LinkPartition,
    LinkRestore,
    NodeCrash,
    NodeJoin,
    NodeLeave,
    NodeRestart,
    TransientSendFailure,
    random_schedule,
)
from .injector import FaultInjector, FaultState, TransferLog, TransferRecord

__all__ = [
    "CompletionRecord",
    "DeadlineExceeded",
    "DegradationController",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FaultState",
    "GpuSlowdown",
    "InvariantViolation",
    "LinkDegrade",
    "LinkPartition",
    "LinkRestore",
    "Membership",
    "MembershipSchedule",
    "NodeCrash",
    "NodeJoin",
    "NodeLeave",
    "NodeRestart",
    "PeerDeadError",
    "RetryPolicy",
    "RobustSyncReport",
    "Roster",
    "SyncAborted",
    "TransferError",
    "TransferLog",
    "TransferRecord",
    "TransientSendFailure",
    "check_all",
    "check_byte_conservation",
    "check_drain_or_raise",
    "check_exactly_once",
    "check_monotone_clocks",
    "random_membership_schedule",
    "random_schedule",
    "run_graph_robust",
    "static_membership",
]
