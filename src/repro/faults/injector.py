"""Fault ground truth and the schedule-replaying injector.

Two layers, deliberately separated:

* :class:`FaultState` -- what is *actually* broken right now (dead nodes,
  partitioned / degraded links, pending transient losses), consulted by
  :class:`~repro.net.fabric.Fabric` on every transfer, plus the
  :class:`TransferLog` that makes byte conservation checkable.
* :class:`FaultInjector` -- a simulated process that replays a
  :class:`~repro.faults.schedule.FaultSchedule` against the live run:
  flipping FaultState, halting crashed nodes' engines, interrupting their
  bound processes, and throttling straggler GPUs.

The runtime's *belief* about all this lives elsewhere, in
:class:`~repro.faults.membership.Membership` -- peers only learn of a crash
by timing out on it (or via the runner's heartbeat detector).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..sim import Environment, Event
from .schedule import (
    FaultEvent,
    FaultSchedule,
    GpuSlowdown,
    LinkDegrade,
    LinkPartition,
    LinkRestore,
    NodeCrash,
    NodeJoin,
    NodeLeave,
    NodeRestart,
    TransientSendFailure,
)

__all__ = ["FaultState", "FaultInjector", "TransferLog", "TransferRecord"]


class TransferRecord:
    """One transfer attempt's lifecycle, for conservation accounting."""

    __slots__ = ("id", "src", "dst", "nbytes", "t_issue", "t_end", "outcome",
                 "cause")

    def __init__(self, rec_id: int, t_issue: float, src: int, dst: int,
                 nbytes: float):
        self.id = rec_id
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.t_issue = t_issue
        self.t_end: Optional[float] = None
        self.outcome: Optional[str] = None  # "delivered" | "dropped"
        self.cause: Optional[str] = None

    def deliver(self, at: float) -> None:
        self._finish(at, "delivered", None)

    def drop(self, at: float, cause: str) -> None:
        self._finish(at, "dropped", cause)

    def _finish(self, at: float, outcome: str, cause: Optional[str]) -> None:
        if self.outcome is not None:
            raise RuntimeError(f"transfer record {self.id} finished twice")
        self.t_end = at
        self.outcome = outcome
        self.cause = cause

    def __repr__(self) -> str:
        state = self.outcome or "in-flight"
        return (f"<Transfer#{self.id} {self.src}->{self.dst} "
                f"{self.nbytes:.0f}B {state}>")


class TransferLog:
    """Every transfer attempt with its outcome: the conservation ledger."""

    def __init__(self):
        self.records: List[TransferRecord] = []

    def begin(self, t: float, src: int, dst: int, nbytes: float
              ) -> TransferRecord:
        rec = TransferRecord(len(self.records), t, src, dst, nbytes)
        self.records.append(rec)
        return rec

    def __len__(self) -> int:
        return len(self.records)

    @property
    def attempted_bytes(self) -> float:
        return sum(r.nbytes for r in self.records)

    @property
    def delivered_bytes(self) -> float:
        return sum(r.nbytes for r in self.records if r.outcome == "delivered")

    @property
    def dropped_bytes(self) -> float:
        return sum(r.nbytes for r in self.records if r.outcome == "dropped")

    def dropped(self, cause: Optional[str] = None) -> List[TransferRecord]:
        return [r for r in self.records if r.outcome == "dropped"
                and (cause is None or r.cause == cause)]

    def in_flight(self) -> List[TransferRecord]:
        return [r for r in self.records if r.outcome is None]


class FaultState:
    """Ground truth of cluster health, consulted by the fabric per transfer."""

    def __init__(self, env: Environment, num_nodes: int):
        self.env = env
        self.num_nodes = num_nodes
        self.dead: Set[int] = set()
        self.degraded: Dict[Tuple[int, int], float] = {}
        self.partitioned: Set[Tuple[int, int]] = set()
        self.transient: Dict[Tuple[int, int], int] = {}
        self.log = TransferLog()
        #: (time, event) pairs in application order, for invariant checks.
        self.applied: List[Tuple[float, FaultEvent]] = []
        self._wait: Dict[Tuple[int, int], Event] = {}

    # -- queries (fabric-facing) ------------------------------------------

    def is_dead(self, node: int) -> bool:
        return node in self.dead

    def blocked(self, src: int, dst: int) -> bool:
        """A (src, dst) transfer cannot make progress right now."""
        return (src, dst) in self.partitioned or dst in self.dead

    def link_factor(self, src: int, dst: int) -> float:
        return self.degraded.get((src, dst), 1.0)

    def take_transient(self, src: int, dst: int) -> bool:
        """Consume one pending transient failure on (src, dst), if any."""
        remaining = self.transient.get((src, dst), 0)
        if remaining <= 0:
            return False
        if remaining == 1:
            del self.transient[(src, dst)]
        else:
            self.transient[(src, dst)] = remaining - 1
        return True

    def wait_event(self, src: int, dst: int) -> Event:
        """Event fired when (src, dst) might be unblocked; re-check after."""
        key = (src, dst)
        event = self._wait.get(key)
        if event is None:
            event = Event(self.env)
            self._wait[key] = event
        return event

    # -- mutations (injector-facing) --------------------------------------

    def crash(self, node: int) -> None:
        self.dead.add(node)

    def restart(self, node: int) -> None:
        self.dead.discard(node)
        for key in [k for k in self._wait if k[1] == node]:
            self._wait.pop(key).succeed()

    def degrade(self, src: int, dst: int, factor: float) -> None:
        if factor == 1.0:
            self.degraded.pop((src, dst), None)
        else:
            self.degraded[(src, dst)] = factor

    def partition(self, src: int, dst: int) -> None:
        self.partitioned.add((src, dst))

    def restore(self, src: int, dst: int) -> None:
        self.partitioned.discard((src, dst))
        self.degraded.pop((src, dst), None)
        event = self._wait.pop((src, dst), None)
        if event is not None:
            event.succeed()

    def add_transient(self, src: int, dst: int, count: int) -> None:
        self.transient[(src, dst)] = self.transient.get((src, dst), 0) + count


class FaultInjector:
    """Replays a :class:`FaultSchedule` against a live simulation.

    Attach everything the schedule can touch: the fabric (link faults and
    the conservation log), the GPU list (stragglers), the engines (crash
    halts execution), and any per-node processes that must die with their
    node (``bind_node_process``).
    """

    def __init__(self, env: Environment, schedule: FaultSchedule,
                 fabric: Optional[Any] = None,
                 gpus: Optional[Sequence[Any]] = None,
                 engines: Optional[Sequence[Any]] = None,
                 num_nodes: Optional[int] = None):
        if num_nodes is None:
            if fabric is not None:
                num_nodes = fabric.num_nodes
            elif gpus:
                num_nodes = len(gpus)
            else:
                raise ValueError("pass num_nodes when no fabric/gpus given")
        schedule.validate_for(num_nodes)
        for event in schedule:
            if isinstance(event, (NodeJoin, NodeLeave)):
                # Membership events live on the epoch axis and belong to
                # the elastic loop (repro.faults.elastic / the training
                # layer), which lowers mid-epoch departures to NodeCrash
                # before any injector sees them.
                raise ValueError(
                    f"{type(event).__name__} is a membership event, not a "
                    f"fault: drive it through a MembershipSchedule "
                    f"(repro.faults.elastic), not a FaultInjector")
        self.env = env
        self.schedule = schedule
        self.state = FaultState(env, num_nodes)
        self.fabric = fabric
        self.gpus = list(gpus) if gpus is not None else []
        self.engines = list(engines) if engines is not None else []
        self._bound: Dict[int, List[Any]] = {}
        self._on_crash: List[Callable[[int], None]] = []
        self._slowdown_token: Dict[int, int] = {}
        if fabric is not None:
            fabric.faults = self.state
        if schedule:
            self.process = env.process(self._driver(), name="fault-injector")

    # -- wiring -----------------------------------------------------------

    def bind_node_process(self, node: int, process: Any) -> None:
        """Interrupt ``process`` with the NodeCrash when ``node`` dies."""
        self._bound.setdefault(node, []).append(process)

    def on_crash(self, callback: Callable[[int], None]) -> None:
        """Called with the node id at each ground-truth crash (the hook the
        robust runner's heartbeat failure detector uses)."""
        self._on_crash.append(callback)

    # -- replay -----------------------------------------------------------

    def _driver(self):
        for event in self.schedule:
            delay = event.at - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._apply(event)

    def _apply(self, event: FaultEvent) -> None:
        self.state.applied.append((self.env.now, event))
        tel = self.env.telemetry
        if tel is not None:
            from dataclasses import asdict
            attrs = asdict(event)
            attrs.pop("at", None)   # collides with the instant's own `at`
            tel.instant(type(event).__name__, category="fault",
                        track="faults", at=self.env.now, **attrs)
            tel.metrics.counter("faults.injected",
                                kind=type(event).__name__).inc()
        if isinstance(event, NodeCrash):
            self._apply_crash(event.node)
        elif isinstance(event, NodeRestart):
            self.state.restart(event.node)
            if event.node < len(self.engines):
                engine = self.engines[event.node]
                if engine is not None and getattr(engine, "halted", False):
                    engine.resume()
        elif isinstance(event, LinkDegrade):
            self.state.degrade(event.src, event.dst, event.factor)
        elif isinstance(event, LinkPartition):
            self.state.partition(event.src, event.dst)
        elif isinstance(event, LinkRestore):
            self.state.restore(event.src, event.dst)
        elif isinstance(event, TransientSendFailure):
            self.state.add_transient(event.src, event.dst, event.count)
        elif isinstance(event, GpuSlowdown):
            self._apply_slowdown(event)
        else:  # pragma: no cover - schedule validation prevents this
            raise TypeError(f"unknown fault event {event!r}")

    def _apply_crash(self, node: int) -> None:
        if self.state.is_dead(node):
            return
        self.state.crash(node)
        if node < len(self.engines) and self.engines[node] is not None:
            halt = getattr(self.engines[node], "halt", None)
            if halt is not None:
                halt()
        for process in self._bound.get(node, []):
            if getattr(process, "is_alive", False):
                process.interrupt(NodeCrash(at=self.env.now, node=node))
        for callback in list(self._on_crash):
            callback(node)

    def _apply_slowdown(self, event: GpuSlowdown) -> None:
        if event.node >= len(self.gpus):
            return
        gpu = self.gpus[event.node]
        token = self._slowdown_token.get(event.node, 0) + 1
        self._slowdown_token[event.node] = token
        gpu.slowdown = event.factor
        if event.duration is not None:
            def restore():
                yield self.env.timeout(event.duration)
                # A newer slowdown supersedes this restore.
                if self._slowdown_token.get(event.node) == token:
                    gpu.slowdown = 1.0

            self.env.process(restore(), name=f"slowdown-restore@{event.node}")
