"""BytePS-style parameter-server baseline (no compression).

Every node is both a GPU worker and a co-located CPU server (the BytePS
deployment the paper tunes for best performance, §6.1).  Gradients are
partitioned into fixed-size slices; each slice is assigned a server
round-robin for load balance.  Workers push slices as soon as the gradient
is ready (fine-grained pipelining, §2.5); servers aggregate on the host
CPU (the BytePS architecture: summation happens in host memory) and push
the result back to every worker.
"""

from __future__ import annotations

from typing import List

from ..casync.ir import ReadyRef, SizeExpr, SyncPlan
from ..casync.passes import PassContext
from ..models import ModelSpec
from .base import Strategy

__all__ = ["BytePS", "partition_sizes"]


def partition_sizes(nbytes: int, part_bytes: float) -> List[float]:
    """Slice an ``nbytes`` gradient into near-equal parts of <= part_bytes."""
    if part_bytes <= 0:
        raise ValueError("part_bytes must be positive")
    parts = max(1, -(-int(nbytes) // int(part_bytes)))
    base = nbytes / parts
    return [base] * parts


class BytePS(Strategy):
    """Partitioned push/pull PS with co-located CPU servers."""

    name = "byteps"
    compression = False

    def __init__(self, part_bytes: float = 4 * 1024 * 1024):
        self.part_bytes = float(part_bytes)

    def expand(self, plan: SyncPlan, pctx: PassContext,
               model: ModelSpec) -> None:
        n = plan.num_nodes
        server_rr = 0
        for grad in model.gradients:
            parts = partition_sizes(grad.nbytes, self.part_bytes)
            for p, part in enumerate(parts):
                server = server_rr % n
                server_rr += 1
                label = f"{grad.name}.p{p}"
                size = SizeExpr(part)
                # Push: every worker sends its slice to the server.
                aggregates = []
                for w in range(n):
                    if w == server:
                        # Local slice still crosses PCIe into host memory.
                        agg = plan.add(
                            "cpu", server, f"agg:{label}@{w}", size,
                            deps=[ReadyRef(w, grad.name)], grad=grad.name)
                    else:
                        push = plan.add(
                            "send", w, f"push:{label}@{w}", size,
                            deps=[ReadyRef(w, grad.name)], dst=server,
                            grad=grad.name)
                        agg = plan.add(
                            "cpu", server, f"agg:{label}@{w}", size,
                            deps=[push], grad=grad.name)
                    aggregates.append(agg)
                # Pull: server returns the aggregate to every worker.
                for w in range(n):
                    if w == server:
                        plan.add("barrier", w, f"pulled:{label}@{w}",
                                 deps=aggregates, grad=grad.name)
                    else:
                        pull = plan.add(
                            "send", server, f"pull:{label}@{w}", size,
                            deps=aggregates, dst=w, grad=grad.name)
                        plan.add("barrier", w, f"pulled:{label}@{w}",
                                 deps=[pull], grad=grad.name)
