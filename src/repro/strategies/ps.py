"""BytePS-style parameter-server baseline (no compression).

Every node is both a GPU worker and a co-located CPU server (the BytePS
deployment the paper tunes for best performance, §6.1).  Gradients are
partitioned into fixed-size slices; each slice is assigned a server
round-robin for load balance.  Workers push slices as soon as the gradient
is ready (fine-grained pipelining, §2.5); servers aggregate on the host
CPU (the BytePS architecture: summation happens in host memory) and push
the result back to every worker.
"""

from __future__ import annotations

from typing import List, Tuple

from ..casync.tasks import TaskGraph
from ..models import GradientSpec, ModelSpec
from .base import Strategy, SyncContext, TaskBuilder

__all__ = ["BytePS", "partition_sizes"]


def partition_sizes(nbytes: int, part_bytes: float) -> List[float]:
    """Slice an ``nbytes`` gradient into near-equal parts of <= part_bytes."""
    if part_bytes <= 0:
        raise ValueError("part_bytes must be positive")
    parts = max(1, -(-int(nbytes) // int(part_bytes)))
    base = nbytes / parts
    return [base] * parts


class BytePS(Strategy):
    """Partitioned push/pull PS with co-located CPU servers."""

    name = "byteps"
    compression = False

    def __init__(self, part_bytes: float = 4 * 1024 * 1024):
        self.part_bytes = float(part_bytes)

    def build(self, ctx: SyncContext, model: ModelSpec) -> TaskGraph:
        graph = TaskGraph(ctx.env)
        builder = TaskBuilder(ctx)
        n = ctx.num_nodes
        server_rr = 0
        for grad in model.gradients:
            parts = partition_sizes(grad.nbytes, self.part_bytes)
            for p, part in enumerate(parts):
                server = server_rr % n
                server_rr += 1
                label = f"{grad.name}.p{p}"
                # Push: every worker sends its slice to the server.
                aggregates = []
                for w in range(n):
                    if w == server:
                        # Local slice still crosses PCIe into host memory.
                        agg = builder.cpu_aggregate(server, part,
                                                    f"agg:{label}@{w}")
                        graph.add(agg, deps=[ctx.ready_event(w, grad)])
                    else:
                        push = graph.add(
                            builder.send(w, server, part, f"push:{label}@{w}"),
                            deps=[ctx.ready_event(w, grad)])
                        agg = graph.add(
                            builder.cpu_aggregate(server, part,
                                                  f"agg:{label}@{w}"),
                            deps=[push])
                    aggregates.append(agg)
                # Pull: server returns the aggregate to every worker.
                for w in range(n):
                    if w == server:
                        done = builder.notify(w, f"pulled:{label}@{w}")
                        graph.add(done, deps=aggregates)
                    else:
                        pull = graph.add(
                            builder.send(server, w, part,
                                         f"pull:{label}@{w}"),
                            deps=aggregates)
                        graph.add(builder.notify(w, f"pulled:{label}@{w}"),
                                  deps=[pull])
        return graph
