"""Strategy framework: shared context and task-construction helpers.

A :class:`Strategy` turns (model, cluster, algorithm, plan) into a
:class:`~repro.casync.tasks.TaskGraph` for one training iteration.  The
graph's sources are per-(node, gradient) *ready events* fired by the
simulated backward pass; its sinks mark each node's view of "all gradients
synchronized".

Cost conventions (all on the node's GPU unless stated):

* encode/decode durations come from the algorithm's
  :class:`~repro.algorithms.base.KernelProfile`;
* ``merge`` of an m-byte accumulation reads two buffers and writes one
  (3 m bytes, one launch);
* ``copy`` models an extra device-to-device memory copy (read + write =
  2 m bytes) -- the overhead the paper attributes to OSS integrations;
* CPU-side work (BytePS servers aggregate on host CPUs) runs ``cpu_factor``
  times slower than the GPU per byte, reflecting §2.5's measured 35.6x
  gap for on-CPU compression.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..algorithms.base import CompressionAlgorithm
from ..casync.decisions import DecisionMap
from ..casync.ir import SyncPlan
from ..casync.passes import MembershipPass, Pass, PassConfig, PassContext
from ..casync.planner import GradientPlan
from ..casync.tasks import Coordinator, NodeEngine, Task, TaskGraph
from ..cluster import ClusterSpec
from ..gpu import Gpu
from ..models import GradientSpec, ModelSpec
from ..net import Fabric
from ..sim import Environment, Event

__all__ = ["MembershipBound", "SyncContext", "Strategy", "TaskBuilder",
           "bind_roster"]


@dataclass
class SyncContext:
    """Everything a strategy needs to build one iteration's task graph."""

    env: Environment
    cluster: ClusterSpec
    fabric: Fabric
    gpus: List[Gpu]
    engines: List[NodeEngine]
    ready: Dict[Tuple[int, str], Event]  # (node, gradient name) -> event
    algorithm: Optional[CompressionAlgorithm] = None
    plans: Optional[Dict[str, GradientPlan]] = None
    coordinator: Optional[Coordinator] = None
    #: Tuning constants for the SyncPlan pass pipeline (and the
    #: coordinator); None means :data:`~repro.casync.passes.DEFAULT_PASS_CONFIG`.
    pass_config: Optional[PassConfig] = None
    #: This iteration's adaptive per-gradient decisions (None = static
    #: path); consumed by :class:`~repro.casync.passes.AdaptivePass` and
    #: content-keyed into the graph cache.
    decisions: Optional[DecisionMap] = None

    @property
    def num_nodes(self) -> int:
        return self.cluster.num_nodes

    def ready_event(self, node: int, grad: GradientSpec) -> Event:
        return self.ready[(node, grad.name)]

    def plan_for(self, grad: GradientSpec) -> Optional[GradientPlan]:
        if self.plans is None:
            return None
        return self.plans.get(grad.name)


class TaskBuilder:
    """Constructs correctly-costed tasks for one context.

    Every task-building method takes the executing ``node``, and costing
    uses *that node's* GPU / CPU hardware.  On a homogeneous cluster the
    per-node lookup short-circuits to the shared spec (``gpu_spec``), so
    the costed durations are bit-identical to the single-spec model.
    """

    #: Host-side (CPU) throughput penalty per byte relative to the GPU,
    #: calibrated to the paper's 35.6x on-CPU vs on-GPU compression gap.
    CPU_FACTOR = 35.0

    def __init__(self, ctx: SyncContext):
        self.ctx = ctx
        cluster = ctx.cluster
        #: Representative GPU (the shared spec on a homogeneous cluster).
        self.gpu_spec = cluster.node.gpu
        self._launch = self.gpu_spec.kernel_launch_us * 1e-6
        if cluster.is_homogeneous:
            self._gpus: Optional[Tuple] = None
            self._launches: Optional[Tuple[float, ...]] = None
        else:
            self._gpus = tuple(spec.gpu for spec in cluster.nodes)
            self._launches = tuple(
                gpu.kernel_launch_us * 1e-6 for gpu in self._gpus)

    def _gpu(self, node: int):
        """Node ``node``'s GPU spec (shared spec when homogeneous)."""
        if self._gpus is None:
            return self.gpu_spec
        return self._gpus[node]

    def _launch_at(self, node: int) -> float:
        if self._launches is None:
            return self._launch
        return self._launches[node]

    # -- size bookkeeping --------------------------------------------------

    def compressed_nbytes(self, nbytes: float) -> float:
        algo = self.ctx.algorithm
        if algo is None:
            return nbytes
        return float(algo.compressed_nbytes(max(1, int(nbytes) // 4)))

    # -- computing tasks ------------------------------------------------------

    def encode(self, node: int, nbytes: float, label: str = "encode",
               on_cpu: bool = False) -> Task:
        algo = self.ctx.algorithm
        duration = algo.encode_time(nbytes, self._gpu(node))
        if on_cpu:
            duration *= self.CPU_FACTOR
        launch = self._launch_at(node) * algo.profile.encode_kernels
        return Task(node, "encode", label, duration=duration,
                    launch_overhead=launch, nbytes=nbytes,
                    out_nbytes=self.compressed_nbytes(nbytes))

    def decode(self, node: int, nbytes: float, label: str = "decode",
               on_cpu: bool = False, allocates_output: bool = False) -> Task:
        """Decode a compressed buffer.

        CaSync decodes *into the existing gradient tensor* (§5: "CompLL
        reuses gradients produced by DNN computation"), so by default no
        new buffer is charged; OSS-style integrations pass
        ``allocates_output=True`` for their separate output allocations.
        """
        algo = self.ctx.algorithm
        duration = algo.decode_time(nbytes, self._gpu(node))
        if on_cpu:
            duration *= self.CPU_FACTOR
        launch = self._launch_at(node) * algo.profile.decode_kernels
        return Task(node, "decode", label, duration=duration,
                    launch_overhead=launch, nbytes=nbytes,
                    out_nbytes=nbytes if allocates_output else None)

    def decode_merge(self, node: int, nbytes: float,
                     label: str = "decode+merge") -> Task:
        """CaSync's fused decode-and-aggregate kernel (§5: "we also fuse
        the decode and merge operators")."""
        algo = self.ctx.algorithm
        gpu = self._gpu(node)
        launch_s = self._launch_at(node)
        duration = (algo.decode_time(nbytes, gpu)
                    + gpu.kernel_time(nbytes, kernels=1)
                    - launch_s)
        launch = launch_s * algo.profile.decode_kernels
        return Task(node, "decode", label, duration=duration,
                    launch_overhead=launch, nbytes=nbytes)

    def aggregate_received(self, node: int, nbytes: float,
                           label: str = "agg", on_cpu: bool = False) -> Task:
        """Aggregate one received compressed buffer into a dense partial.

        For sparsification codecs this is a scatter-add touching only the
        transmitted (index, value) pairs; for quantizers the buffer must be
        decoded to dense form and added (the fused decode+merge kernel).
        """
        algo = self.ctx.algorithm
        if algo is not None and algo.category == "sparsification":
            compressed = self.compressed_nbytes(nbytes)
            duration = self._gpu(node).kernel_time(3 * compressed, kernels=1)
            if on_cpu:
                duration *= self.CPU_FACTOR
            return Task(node, "merge", label, duration=duration,
                        launch_overhead=self._launch_at(node),
                        nbytes=compressed)
        return self.decode_merge(node, nbytes, label)

    def merge(self, node: int, nbytes: float, label: str = "merge",
              on_cpu: bool = False) -> Task:
        gpu = self._gpu(node)
        duration = gpu.kernel_time(3 * nbytes, kernels=1)
        if on_cpu:
            # Host summation: memory-bound at host DRAM speed; fold the
            # GPU<->host PCIe hops into the same factor-of-slower model.
            duration = gpu.kernel_time(3 * nbytes, kernels=1) * 6
        return Task(node, "merge", label, duration=duration,
                    launch_overhead=self._launch_at(node), nbytes=nbytes)

    def copy(self, node: int, nbytes: float, label: str = "copy") -> Task:
        duration = self._gpu(node).kernel_time(2 * nbytes, kernels=1)
        return Task(node, "copy", label, duration=duration,
                    launch_overhead=self._launch_at(node), nbytes=nbytes,
                    out_nbytes=nbytes)

    def cpu_aggregate(self, node: int, nbytes: float,
                      label: str = "cpu-agg") -> Task:
        """Host-side summation of an ``nbytes`` partition (BytePS server).

        Bandwidth comes from *this node's* spec: the PCIe hop plus
        vectorized summation its host can sustain.
        """
        duration = nbytes / self.ctx.cluster.node_at(node).cpu_agg_bytes_per_s
        return Task(node, "cpu", label, duration=duration, nbytes=nbytes)

    def cpu_work(self, node: int, duration: float,
                 label: str = "cpu") -> Task:
        """Arbitrary host-side work of a fixed duration."""
        return Task(node, "cpu", label, duration=duration)

    # -- communication tasks ------------------------------------------------------

    def send(self, src: int, dst: int, nbytes: float, label: str = "send",
             bulk: bool = False) -> Task:
        return Task(src, "send", label, nbytes=nbytes, dst=dst, bulk=bulk)

    def notify(self, node: int, label: str = "done") -> Task:
        return Task(node, "notify", label)


class Strategy(ABC):
    """A gradient synchronization strategy.

    Strategies are IR frontends: :meth:`expand` emits the structural
    :class:`~repro.casync.ir.SyncPlan` ops for one iteration, and
    :meth:`passes` names the CaSync optimizations to apply to it.  The
    concrete :meth:`build` runs the whole pipeline -- directive passes,
    expansion, op passes, verification, lowering -- through the graph
    cache (:func:`repro.casync.lower.build_graph`) and returns a
    TaskGraph whose completion means every node has the fully aggregated
    value of every gradient of ``model``.
    """

    name: str = "strategy"
    #: Whether this strategy compresses gradients.
    compression: bool = False

    def expand(self, plan: SyncPlan, pctx: PassContext,
               model: ModelSpec) -> None:
        """Emit this strategy's ops into ``plan`` (after directive passes).

        Must only consult ``pctx`` (cluster/algorithm/plans/config) and the
        plan's directives -- never a live Environment -- so expansion stays
        deterministic and cacheable.  Not abstract for backwards
        compatibility: a legacy strategy may override :meth:`build`
        directly and skip the IR pipeline entirely.
        """
        raise NotImplementedError(
            f"{type(self).__name__} must implement expand() "
            "(or override build() to bypass the SyncPlan pipeline)")

    def passes(self) -> List[Pass]:
        """Optimization passes to run over the plan (verify is implicit)."""
        return []

    def cache_token(self) -> tuple:
        """Hashable configuration identity for the graph cache.

        The default captures every scalar (or scalar-tuple, e.g.
        ``extra_passes`` name lists) constructor attribute, which covers
        all built-in strategies; override for exotic state.
        """
        try:
            attrs = vars(self)
        except TypeError:
            return ()

        def scalar(v):
            return isinstance(v, (bool, int, float, str))

        return tuple((k, v) for k, v in sorted(attrs.items())
                     if scalar(v) or (isinstance(v, tuple)
                                      and all(scalar(x) for x in v)))

    def build(self, ctx: SyncContext, model: ModelSpec) -> TaskGraph:
        """Construct the task graph for one iteration (via the IR pipeline)."""
        from ..casync.lower import build_graph  # deferred: avoids a cycle
        return build_graph(self, ctx, model)

    def __repr__(self) -> str:
        return f"<Strategy {self.name}>"


class MembershipBound(Strategy):
    """A strategy bound to one elastic epoch's roster.

    Elastic training re-plans at every roster change instead of reusing
    (and crashing, or silently mis-sizing) the previous epoch's graph.
    This wrapper is how: it delegates expansion and configuration to the
    wrapped strategy -- so ``ring`` stays ``ring`` -- and appends a
    :class:`~repro.casync.passes.MembershipPass` to the pipeline, which
    validates the plan against the roster and keys the graph cache per
    (roster, epoch).  Because the wrapped strategy's ``cache_token`` and
    pass list are folded in unchanged, a bound strategy over the full
    static roster lowers to the *identical* task graph (the golden no-op
    guarantee); only the cache key gains the membership component.
    """

    def __init__(self, inner: Strategy, membership: Pass) -> None:
        self.inner = inner
        self.membership = membership
        #: Delegated identity: the graph cache and the experiment tables
        #: see the wrapped strategy's name/compression flags.
        self.name = inner.name
        self.compression = inner.compression

    def expand(self, plan: SyncPlan, pctx: PassContext,
               model: ModelSpec) -> None:
        self.inner.expand(plan, pctx, model)

    def passes(self) -> List[Pass]:
        return list(self.inner.passes()) + [self.membership]

    def cache_token(self) -> tuple:
        return self.inner.cache_token()

    def build(self, ctx: SyncContext, model: ModelSpec) -> TaskGraph:
        return self.inner.build(ctx, model) if type(self.inner).build \
            is not Strategy.build else super().build(ctx, model)

    def __repr__(self) -> str:
        return f"<Strategy {self.name} bound to {self.membership!r}>"


def bind_roster(strategy: Strategy, roster: Sequence[int],
                epoch: int = 0) -> MembershipBound:
    """Bind ``strategy`` to the given member nodes for ``epoch``."""
    return MembershipBound(strategy,
                           MembershipPass(roster=roster, epoch=epoch))
