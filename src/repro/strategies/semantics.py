"""Numeric dataflow semantics of each synchronization strategy.

The task graphs the strategies build carry *costs* (bytes, kernel times),
not values -- the simulator never touches gradient data.  This module is
the missing numeric half: for each strategy it executes the protocol's
actual decode-merge-encode dataflow over real numpy buffers with the real
codecs, mirroring the partitioning rules the graph builders use
(:func:`~repro.strategies.ps.partition_sizes`, the CaSync plan rules,
:func:`~repro.casync.topology.ps_topology` round-robin aggregator
assignment, ring successor order).

The differential tests compare these executions against independent,
straight-line serial references: a structural bug in the shared
partitioning/topology machinery (wrong boundaries, a skipped hop, a
double merge) shows up as a numeric mismatch.

Two conventions keep stochastic codecs (TernGrad's randomized rounding)
bit-reproducible between a semantics run and a reference run built from a
fresh same-seed instance:

* encode calls happen in canonical order -- per gradient in dict order,
  per partition ascending, workers ascending (or hop-chain order for
  rings), aggregate re-encode last;
* decode never consumes randomness (true of every registered codec).

Per-node asymmetries are modelled faithfully: a CaSync-PS aggregator
keeps its dense merged value (it never decodes its own re-encode), and a
CaSync-Ring final holder keeps the un-requantized partial, while every
other node sees one extra decode(encode(.)) roundtrip.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..algorithms.base import CompressionAlgorithm
from ..casync.planner import GradientPlan
from ..casync.topology import ps_topology, ring_topology
from .ps import partition_sizes

__all__ = [
    "roundtrip",
    "byteps_values",
    "byteps_oss_values",
    "ring_values",
    "ring_oss_values",
    "casync_ps_values",
    "casync_ring_values",
    "strategy_values",
]

#: name -> one float32 array per worker (the node's local gradient).
WorkerGrads = Dict[str, Sequence[np.ndarray]]
#: name -> one float32 array per node (the node's post-sync value).
NodeValues = Dict[str, List[np.ndarray]]

_DEFAULT_PART_BYTES = 4 * 1024 * 1024


def roundtrip(algo: Optional[CompressionAlgorithm],
              value: np.ndarray) -> np.ndarray:
    """decode(encode(value)), or the identity without an algorithm."""
    value = np.asarray(value, dtype=np.float32)
    if algo is None:
        return value
    return algo.decode(algo.encode(value))


def _as_grads(grads: Sequence[np.ndarray]) -> List[np.ndarray]:
    out = [np.ascontiguousarray(g, dtype=np.float32).ravel() for g in grads]
    if not out:
        raise ValueError("need at least one worker gradient")
    size = out[0].size
    for g in out:
        if g.size != size:
            raise ValueError("workers disagree on gradient size")
    return out


def _partitions_for(name: str, nbytes: int, num_nodes: int,
                    plans: Optional[Dict[str, GradientPlan]]):
    """(k, compress) for a CaSync gradient: the strategy's _plan rule."""
    if plans is not None and name in plans:
        plan = plans[name]
        return max(1, plan.partitions), plan.compress
    k = min(num_nodes,
            max(1, -(-nbytes // _DEFAULT_PART_BYTES)))  # ceil div
    return k, True


def _ps_exchange(parts: List[np.ndarray],
                 algo: Optional[CompressionAlgorithm]):
    """One PS slice: workers encode, server decode+merges, re-encodes.

    Returns (merged, redistributed): the dense aggregate the server holds
    and the value a worker decodes from the server's re-encode.
    """
    if algo is None:
        merged = parts[0].copy()
        for p in parts[1:]:
            merged = merged + p
        return merged, merged
    decoded = [algo.decode(algo.encode(p)) for p in parts]
    merged = decoded[0]
    for d in decoded[1:]:
        merged = merged + d
    redistributed = algo.decode(algo.encode(merged))
    return merged, redistributed


def byteps_values(worker_grads: WorkerGrads,
                  part_bytes: float = _DEFAULT_PART_BYTES) -> NodeValues:
    """Raw BytePS: per 4MB-capped slice, sum in worker order, pull to all."""
    out: NodeValues = {}
    for name, raw in worker_grads.items():
        grads = _as_grads(raw)
        n = len(grads)
        k = len(partition_sizes(grads[0].nbytes, part_bytes))
        slices = [np.array_split(g, k) for g in grads]
        merged = np.concatenate([
            _ps_exchange([slices[w][p] for w in range(n)], None)[0]
            for p in range(k)])
        out[name] = [merged.copy() for _ in range(n)]
    return out


def byteps_oss_values(worker_grads: WorkerGrads,
                      algo: CompressionAlgorithm,
                      part_bytes: float = _DEFAULT_PART_BYTES) -> NodeValues:
    """BytePS(OSS): compressed push, server decode+merge+re-encode, pull.

    Every node -- the server included (it round-trips its own re-encode
    through the staging copy + decode path) -- ends with the decoded
    re-encoded aggregate.
    """
    out: NodeValues = {}
    for name, raw in worker_grads.items():
        grads = _as_grads(raw)
        n = len(grads)
        k = len(partition_sizes(grads[0].nbytes, part_bytes))
        slices = [np.array_split(g, k) for g in grads]
        value = np.concatenate([
            _ps_exchange([slices[w][p] for w in range(n)], algo)[1]
            for p in range(k)])
        out[name] = [value.copy() for _ in range(n)]
    return out


def ring_values(worker_grads: WorkerGrads) -> NodeValues:
    """Raw ring allreduce: chunk j is reduced along the ring in hop order.

    The reduce-scatter accumulates chunk j starting at node (j+1) mod n
    and ending at its owner j; the allgather then broadcasts the owner's
    buffer, so every node holds the identical (ring-ordered) sum.
    """
    out: NodeValues = {}
    for name, raw in worker_grads.items():
        grads = _as_grads(raw)
        n = len(grads)
        chunks = [np.array_split(g, n) for g in grads]
        reduced = []
        for j in range(n):
            partial = chunks[(j + 1) % n][j].copy()
            for step in range(1, n):
                partial = partial + chunks[(j + 1 + step) % n][j]
            reduced.append(partial)
        value = np.concatenate(reduced)
        out[name] = [value.copy() for _ in range(n)]
    return out


def ring_oss_values(worker_grads: WorkerGrads,
                    algo: CompressionAlgorithm) -> NodeValues:
    """Ring(OSS): encode once at the origin, allgather, decode-merge all.

    Compressed buffers are not aggregatable, so there is no re-encode of
    the aggregate: every node sums the n decoded origin buffers (origin
    order), and that sum *is* the final value.
    """
    out: NodeValues = {}
    for name, raw in worker_grads.items():
        grads = _as_grads(raw)
        n = len(grads)
        decoded = [algo.decode(algo.encode(g)) for g in grads]
        value = decoded[0]
        for d in decoded[1:]:
            value = value + d
        out[name] = [value.copy() for _ in range(n)]
    return out


def casync_ps_values(worker_grads: WorkerGrads,
                     algo: CompressionAlgorithm,
                     plans: Optional[Dict[str, GradientPlan]] = None
                     ) -> NodeValues:
    """CaSync-PS: co-located GPU aggregators, round-robin over partitions.

    Per partition the aggregator decodes and merges every worker's encode
    and re-encodes the aggregate for the pulls.  The aggregator itself
    keeps the dense merged value (its notify hangs off the re-encode, not
    a decode); every other node decodes the pulled buffer.
    """
    names = list(worker_grads)
    if not names:
        return {}
    n = len(_as_grads(worker_grads[names[0]]))
    pool = ps_topology(n, colocated=True).aggregators()
    agg_rr = 0
    out: NodeValues = {}
    for name in names:
        grads = _as_grads(worker_grads[name])
        k, compress = _partitions_for(name, grads[0].nbytes, n, plans)
        slices = [np.array_split(g, k) for g in grads]
        per_node_parts: List[List[np.ndarray]] = [[] for _ in range(n)]
        for p in range(k):
            aggregator = pool[agg_rr % len(pool)]
            agg_rr += 1
            merged, redistributed = _ps_exchange(
                [slices[w][p] for w in range(n)], algo if compress else None)
            for node in range(n):
                per_node_parts[node].append(
                    merged if node == aggregator else redistributed)
        out[name] = [np.concatenate(parts) for parts in per_node_parts]
    return out


def casync_ring_values(worker_grads: WorkerGrads,
                       algo: CompressionAlgorithm,
                       plans: Optional[Dict[str, GradientPlan]] = None
                       ) -> NodeValues:
    """CaSync-Ring: hop-wise decode+merge+encode along the ring.

    Chunk c starts at node c mod n; each aggregation hop requantizes the
    running partial (encode, send, decode+merge at the successor).  The
    final holder keeps the last partial un-requantized; dissemination
    encodes it once and every other node decodes that same buffer.
    Gradients the plan leaves uncompressed take the raw ring path.
    """
    names = list(worker_grads)
    if not names:
        return {}
    n = len(_as_grads(worker_grads[names[0]]))
    topology = ring_topology(n)
    out: NodeValues = {}
    for name in names:
        grads = _as_grads(worker_grads[name])
        if n == 1:
            out[name] = [grads[0].copy()]
            continue
        k, compress = _partitions_for(name, grads[0].nbytes, n, plans)
        if not compress:
            out[name] = ring_values({name: grads})[name]
            continue
        chunks = [np.array_split(g, k) for g in grads]
        per_node_parts: List[List[np.ndarray]] = [[] for _ in range(n)]
        for c in range(k):
            start = c % n
            holder = start
            partial = chunks[holder][c].copy()
            for _step in range(n - 1):
                nxt = topology.successor(holder)
                partial = algo.decode(algo.encode(partial)) + chunks[nxt][c]
                holder = nxt
            final_holder = holder  # == (start + n - 1) % n
            broadcast = algo.decode(algo.encode(partial))
            for node in range(n):
                per_node_parts[node].append(
                    partial if node == final_holder else broadcast)
        out[name] = [np.concatenate(parts) for parts in per_node_parts]
    return out


def strategy_values(strategy, worker_grads: WorkerGrads,
                    algo: Optional[CompressionAlgorithm] = None,
                    plans: Optional[Dict[str, GradientPlan]] = None
                    ) -> NodeValues:
    """Dispatch to the numeric semantics matching ``strategy``."""
    counts = {name: len(seq) for name, seq in worker_grads.items()}
    if len(set(counts.values())) > 1:
        raise ValueError(
            f"gradients disagree on worker count {counts}; keys must be "
            "gradient names, each mapping to one array per worker")
    from .casync import CaSyncPS, CaSyncRing
    from .oss import BytePSOSSCompression, RingOSSCompression
    from .ps import BytePS
    from .ring import RingAllreduce

    if isinstance(strategy, BytePS):
        return byteps_values(worker_grads, part_bytes=strategy.part_bytes)
    if isinstance(strategy, RingAllreduce):
        return ring_values(worker_grads)
    if isinstance(strategy, BytePSOSSCompression):
        if algo is None:
            raise ValueError(f"{strategy.name} requires a compression algorithm")
        return byteps_oss_values(worker_grads, algo,
                                 part_bytes=strategy.part_bytes)
    if isinstance(strategy, RingOSSCompression):
        if algo is None:
            raise ValueError(f"{strategy.name} requires a compression algorithm")
        return ring_oss_values(worker_grads, algo)
    if isinstance(strategy, CaSyncPS):
        if algo is None:
            raise ValueError(f"{strategy.name} requires a compression algorithm")
        return casync_ps_values(worker_grads, algo, plans=plans)
    if isinstance(strategy, CaSyncRing):
        if algo is None:
            raise ValueError(f"{strategy.name} requires a compression algorithm")
        return casync_ring_values(worker_grads, algo, plans=plans)
    raise TypeError(f"no numeric semantics for {strategy!r}")
