"""Gradient synchronization strategies: baselines and CaSync variants.

All concrete strategies are registered in the strategy registry
(:mod:`repro.strategies.registry`), so callers can look them up by name
("byteps", "ring", "byteps-oss", "ring-oss", "casync-ps", "casync-ring")
the same way compression algorithms are looked up.  The historical
"hipress-ps" / "hipress-ring" names still resolve, with a
DeprecationWarning.
"""

from .base import (MembershipBound, Strategy, SyncContext, TaskBuilder,
                   bind_roster)
from .casync import CaSyncPS, CaSyncRing
from .oss import BytePSOSSCompression, RingOSSCompression
from .ps import BytePS, partition_sizes
from .registry import (
    DEPRECATED_ALIASES,
    available_strategies,
    get_strategy,
    register_strategy,
    resolve_strategy_name,
)
from .ring import RingAllreduce, bucketize

register_strategy("byteps", BytePS)
register_strategy("ring", RingAllreduce)
register_strategy("byteps-oss", BytePSOSSCompression)
register_strategy("ring-oss", RingOSSCompression)
register_strategy("casync-ps", CaSyncPS)
register_strategy("casync-ring", CaSyncRing)

__all__ = [
    "BytePS",
    "BytePSOSSCompression",
    "CaSyncPS",
    "CaSyncRing",
    "DEPRECATED_ALIASES",
    "MembershipBound",
    "RingAllreduce",
    "RingOSSCompression",
    "Strategy",
    "SyncContext",
    "TaskBuilder",
    "available_strategies",
    "bind_roster",
    "bucketize",
    "get_strategy",
    "partition_sizes",
    "register_strategy",
    "resolve_strategy_name",
]
