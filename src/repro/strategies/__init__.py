"""Gradient synchronization strategies: baselines and CaSync variants."""

from .base import Strategy, SyncContext, TaskBuilder
from .casync import CaSyncPS, CaSyncRing
from .oss import BytePSOSSCompression, RingOSSCompression
from .ps import BytePS, partition_sizes
from .ring import RingAllreduce, bucketize

__all__ = [
    "BytePS",
    "BytePSOSSCompression",
    "CaSyncPS",
    "CaSyncRing",
    "RingAllreduce",
    "RingOSSCompression",
    "Strategy",
    "SyncContext",
    "TaskBuilder",
    "bucketize",
    "partition_sizes",
]
