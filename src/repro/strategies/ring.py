"""Ring-allreduce baseline (Horovod-style, no compression).

Gradients are fused into buckets in backward order (the standard tensor-
fusion optimization); each bucket is allreduced over the node ring with the
bandwidth-optimal 2(N-1)-step schedule: N-1 reduce-scatter steps (send a
chunk, merge the received chunk) followed by N-1 allgather steps
(forward the final chunks).  Buckets are serialized -- Ring-allreduce is a
"global, atomic, bulk synchronization operation" (§2.5) -- but a bucket
can start as soon as its gradients emerge from backward, which is the
conventional computation/communication pipeline.
"""

from __future__ import annotations

from typing import List

from ..casync.ir import ReadyRef, SizeExpr, SyncPlan
from ..casync.passes import PassContext
from ..models import GradientSpec, ModelSpec
from .base import Strategy

__all__ = ["RingAllreduce", "bucketize"]


def bucketize(gradients, bucket_bytes: float) -> List[List[GradientSpec]]:
    """Group gradients (in backward order) into fusion buckets."""
    if bucket_bytes <= 0:
        raise ValueError("bucket_bytes must be positive")
    buckets: List[List[GradientSpec]] = []
    current: List[GradientSpec] = []
    size = 0.0
    for grad in gradients:
        current.append(grad)
        size += grad.nbytes
        if size >= bucket_bytes:
            buckets.append(current)
            current = []
            size = 0.0
    if current:
        buckets.append(current)
    return buckets


class RingAllreduce(Strategy):
    """Bucketed Ring-allreduce without compression.

    With ``gpu_ring=True`` (the deployment the paper benchmarks: one NCCL
    ring spanning every GPU, intra-node aggregation disabled) the ring has
    2(total_gpus - 1) steps rather than 2(nodes - 1).  The simulator keeps
    node-level transfers (intra-node hops ride NVLink and are nearly free)
    and accounts for the extra steps' serial latency -- wire latency plus a
    per-step NCCL launch/synchronization overhead -- as explicit serial
    work on each node's ring chain.
    """

    name = "ring"
    compression = False

    #: Per-ring-step NCCL kernel launch + synchronization overhead.
    NCCL_STEP_OVERHEAD_S = 15e-6

    def __init__(self, bucket_bytes: float = 64 * 1024 * 1024,
                 gpu_ring: bool = True):
        self.bucket_bytes = float(bucket_bytes)
        self.gpu_ring = gpu_ring

    def _step_overhead(self, ctx) -> float:
        """Extra serial seconds per node-level ring step.

        ``ctx`` is anything exposing ``num_nodes`` and ``cluster`` (a
        SyncContext or a :class:`~repro.casync.passes.PassContext`).
        """
        n = ctx.num_nodes
        node_steps = 2 * (n - 1)
        if not self.gpu_ring:
            return self.NCCL_STEP_OVERHEAD_S
        total_gpus = ctx.cluster.total_gpus
        gpu_steps = 2 * (total_gpus - 1)
        # A ring step is paced by the slowest participating link (on a
        # uniform network this is exactly the core latency).
        latency = ctx.cluster.network.bottleneck(n).latency_s
        per_step = latency + self.NCCL_STEP_OVERHEAD_S
        # Latency of the full GPU ring, minus what the node-level transfers
        # already pay, spread over the node-level steps.
        extra = gpu_steps * per_step - node_steps * latency
        return max(0.0, extra / node_steps)

    def expand(self, plan: SyncPlan, pctx: PassContext,
               model: ModelSpec) -> None:
        n = plan.num_nodes
        if n == 1:
            for grad in model.gradients:
                plan.add("barrier", 0, f"done:{grad.name}",
                         deps=[ReadyRef(0, grad.name)], grad=grad.name)
            return

        step_overhead = self._step_overhead(pctx)
        buckets = bucketize(model.gradients, self.bucket_bytes)
        prev_done = [None] * n  # serializes buckets per node
        for b, bucket in enumerate(buckets):
            size = sum(g.nbytes for g in bucket)
            chunk = SizeExpr(size / n)
            ready = [[ReadyRef(i, g.name) for g in bucket]
                     for i in range(n)]

            sends = {}   # (node, step) -> op uid, reduce-scatter phase
            merges = {}  # (node, step) -> op uid
            for step in range(n - 1):
                for i in range(n):
                    if step == 0:
                        deps = list(ready[i])
                        if prev_done[i] is not None:
                            deps.append(prev_done[i])
                    else:
                        deps = [merges[(i, step - 1)]]
                    if step_overhead > 0:
                        pause = plan.add(
                            "cpu", i, f"ringstep{b}.{step}@{i}", deps=deps,
                            duration_s=step_overhead)
                        deps = [pause]
                    sends[(i, step)] = plan.add(
                        "send", i, f"rs{b}.{step}@{i}", chunk, deps=deps,
                        dst=(i + 1) % n)
                for i in range(n):
                    deps = [sends[((i - 1) % n, step)]] + list(ready[i])
                    merges[(i, step)] = plan.add(
                        "merge", i, f"merge{b}.{step}@{i}", chunk, deps=deps)

            ag_sends = {}
            for step in range(n - 1):
                for i in range(n):
                    if step == 0:
                        deps = [merges[(i, n - 2)]]
                    else:
                        deps = [ag_sends[((i - 1) % n, step - 1)]]
                    if step_overhead > 0:
                        pause = plan.add(
                            "cpu", i, f"agstep{b}.{step}@{i}", deps=deps,
                            duration_s=step_overhead)
                        deps = [pause]
                    ag_sends[(i, step)] = plan.add(
                        "send", i, f"ag{b}.{step}@{i}", chunk, deps=deps,
                        dst=(i + 1) % n)

            for i in range(n):
                deps = [merges[(i, n - 2)]]
                deps += [ag_sends[((i - 1) % n, step)]
                         for step in range(n - 1)]
                prev_done[i] = plan.add(
                    "barrier", i, f"bucket{b}-done@{i}", deps=deps)
