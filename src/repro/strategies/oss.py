"""Compression-enabled baselines: the industry OSS integrations (§2.5, §6.1).

These reproduce the *co-design* the paper criticizes -- compression logic
"separated and scattered across gradient synchronization":

* :class:`BytePSOSSCompression` -- BytePS with worker-side on-GPU
  compression bolted on (the paper's fair-comparison setup).  Workers
  encode each partition on the GPU with an extra staging memory copy; but
  BytePS servers are *host-CPU* processes, so aggregation must decode,
  merge, and re-encode on the CPU at the measured ~35x penalty (§2.5), and
  every partition of every gradient is compressed indiscriminately --
  launch overheads amplify along the 3N-2 operators per gradient.

* :class:`RingOSSCompression` -- the Horovod community DGC integration
  (Ring(OSS-DGC)): compressed gradients are not aggregatable in a
  reduce-scatter, so each gradient is encoded once and *allgathered*
  (N-1 forwarding steps); every node then decodes and merges all N buffers
  strictly after the bulk communication finishes -- coarse-grained, no
  compression/communication pipelining, no selective compression.
"""

from __future__ import annotations

from ..casync.tasks import TaskGraph
from ..models import ModelSpec
from .base import Strategy, SyncContext, TaskBuilder
from .ps import partition_sizes

__all__ = ["BytePSOSSCompression", "RingOSSCompression"]


class BytePSOSSCompression(Strategy):
    """BytePS + worker-GPU compression, CPU servers (BytePS(OSS-onebit)).

    ``worker_on_cpu=True`` reproduces the original open-source onebit,
    which compresses on the host CPU even at the workers (§2.5 / Fig. 11's
    "on-CPU" stage).
    """

    name = "byteps-oss"
    compression = True

    def __init__(self, part_bytes: float = 4 * 1024 * 1024,
                 worker_on_cpu: bool = False):
        self.part_bytes = float(part_bytes)
        self.worker_on_cpu = worker_on_cpu

    def build(self, ctx: SyncContext, model: ModelSpec) -> TaskGraph:
        if ctx.algorithm is None:
            raise ValueError(f"{self.name} requires a compression algorithm")
        graph = TaskGraph(ctx.env)
        builder = TaskBuilder(ctx)
        n = ctx.num_nodes
        server_rr = 0
        for grad in model.gradients:
            parts = partition_sizes(grad.nbytes, self.part_bytes)
            for p, part in enumerate(parts):
                server = server_rr % n
                server_rr += 1
                label = f"{grad.name}.p{p}"
                compressed = builder.compressed_nbytes(part)

                merges = []
                for w in range(n):
                    # Worker: staging copy + on-GPU encode of this slice.
                    stage = graph.add(
                        builder.copy(w, part, f"stage:{label}@{w}"),
                        deps=[ctx.ready_event(w, grad)])
                    enc = builder.encode(w, part, f"enc:{label}@{w}",
                                         on_cpu=self.worker_on_cpu)
                    if self.worker_on_cpu:
                        enc.kind = "cpu"
                    graph.add(enc, deps=[stage])
                    if w == server:
                        arrived = enc
                    else:
                        arrived = graph.add(
                            builder.send(w, server, compressed,
                                         f"push:{label}@{w}"),
                            deps=[enc])
                    # Server (host CPU): decode then accumulate.
                    dec = graph.add(
                        builder.decode(server, part,
                                       f"srv-dec:{label}@{w}", on_cpu=True,
                                       allocates_output=True),
                        deps=[arrived])
                    dec.kind = "cpu"
                    agg = graph.add(
                        builder.cpu_aggregate(server, part,
                                              f"srv-agg:{label}@{w}"),
                        deps=[dec])
                    merges.append(agg)

                # Server re-encodes the aggregate on the CPU, then pulls.
                srv_enc = graph.add(
                    builder.encode(server, part, f"srv-enc:{label}",
                                   on_cpu=True),
                    deps=merges)
                srv_enc.kind = "cpu"
                for w in range(n):
                    if w == server:
                        arrived = srv_enc
                    else:
                        arrived = graph.add(
                            builder.send(server, w, compressed,
                                         f"pull:{label}@{w}"),
                            deps=[srv_enc])
                    unstage = graph.add(
                        builder.copy(w, part, f"unstage:{label}@{w}"),
                        deps=[arrived])
                    dec = builder.decode(w, part, f"dec:{label}@{w}",
                                         on_cpu=self.worker_on_cpu,
                                         allocates_output=True)
                    if self.worker_on_cpu:
                        dec.kind = "cpu"
                    graph.add(dec, deps=[unstage])
                    graph.add(builder.notify(w, f"done:{label}@{w}"),
                              deps=[dec])
        return graph


class RingOSSCompression(Strategy):
    """Ring allgather of compressed gradients (Ring(OSS-DGC))."""

    name = "ring-oss"
    compression = True

    def build(self, ctx: SyncContext, model: ModelSpec) -> TaskGraph:
        if ctx.algorithm is None:
            raise ValueError(f"{self.name} requires a compression algorithm")
        graph = TaskGraph(ctx.env)
        builder = TaskBuilder(ctx)
        n = ctx.num_nodes
        if n == 1:
            for grad in model.gradients:
                graph.add(builder.notify(0, f"done:{grad.name}"),
                          deps=[ctx.ready_event(0, grad)])
            return graph

        prev_done = [None] * n  # allreduce ops serialize, as in Horovod
        for grad in model.gradients:
            compressed = builder.compressed_nbytes(grad.nbytes)
            encodes = []
            for i in range(n):
                deps = [ctx.ready_event(i, grad)]
                if prev_done[i] is not None:
                    deps.append(prev_done[i])
                encodes.append(graph.add(
                    builder.encode(i, grad.nbytes, f"enc:{grad.name}@{i}"),
                    deps=deps))

            # Allgather: at step s, node i forwards the buffer that
            # originated at node (i - s) mod n to its successor.
            sends = {}
            for step in range(n - 1):
                for i in range(n):
                    if step == 0:
                        deps = [encodes[i]]
                    else:
                        deps = [sends[((i - 1) % n, step - 1)]]
                    sends[(i, step)] = graph.add(
                        builder.send(i, (i + 1) % n, compressed,
                                     f"ag:{grad.name}.{step}@{i}"),
                        deps=deps)

            # Coarse-grained: every node decodes + merges all n buffers
            # only after its whole allgather completed (no pipelining).
            for i in range(n):
                all_received = [sends[((i - 1) % n, step)]
                                for step in range(n - 1)] + [encodes[i]]
                barrier = graph.add(
                    builder.notify(i, f"ag-done:{grad.name}@{i}"),
                    deps=all_received)
                last = barrier
                for b in range(n):
                    last = graph.add(
                        builder.aggregate_received(
                            i, grad.nbytes, f"agg:{grad.name}.{b}@{i}"),
                        deps=[last])
                prev_done[i] = graph.add(
                    builder.notify(i, f"done:{grad.name}@{i}"), deps=[last])
        return graph
