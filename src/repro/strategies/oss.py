"""Compression-enabled baselines: the industry OSS integrations (§2.5, §6.1).

These reproduce the *co-design* the paper criticizes -- compression logic
"separated and scattered across gradient synchronization":

* :class:`BytePSOSSCompression` -- BytePS with worker-side on-GPU
  compression bolted on (the paper's fair-comparison setup).  Workers
  encode each partition on the GPU with an extra staging memory copy; but
  BytePS servers are *host-CPU* processes, so aggregation must decode,
  merge, and re-encode on the CPU at the measured ~35x penalty (§2.5), and
  every partition of every gradient is compressed indiscriminately --
  launch overheads amplify along the 3N-2 operators per gradient.

* :class:`RingOSSCompression` -- the Horovod community DGC integration
  (Ring(OSS-DGC)): compressed gradients are not aggregatable in a
  reduce-scatter, so each gradient is encoded once and *allgathered*
  (N-1 forwarding steps); every node then decodes and merges all N buffers
  strictly after the bulk communication finishes -- coarse-grained, no
  compression/communication pipelining, no selective compression.

As IR frontends: neither runs the partition/bulk/selective passes (the
optimizations are exactly what the OSS co-design lacks).  Ring-OSS keeps
:class:`~repro.casync.passes.FuseDecodeMergePass` because its per-buffer
aggregation uses the fused decode+merge kernel; BytePS-OSS decodes and
sums in separate host-CPU steps, so nothing is fusable there.
"""

from __future__ import annotations

from typing import List

from ..casync.ir import ReadyRef, SizeExpr, SyncPlan
from ..casync.passes import FuseDecodeMergePass, Pass, PassContext
from ..models import ModelSpec
from .base import Strategy
from .ps import partition_sizes

__all__ = ["BytePSOSSCompression", "RingOSSCompression"]


class BytePSOSSCompression(Strategy):
    """BytePS + worker-GPU compression, CPU servers (BytePS(OSS-onebit)).

    ``worker_on_cpu=True`` reproduces the original open-source onebit,
    which compresses on the host CPU even at the workers (§2.5 / Fig. 11's
    "on-CPU" stage).
    """

    name = "byteps-oss"
    compression = True

    def __init__(self, part_bytes: float = 4 * 1024 * 1024,
                 worker_on_cpu: bool = False):
        self.part_bytes = float(part_bytes)
        self.worker_on_cpu = worker_on_cpu

    def expand(self, plan: SyncPlan, pctx: PassContext,
               model: ModelSpec) -> None:
        if pctx.algorithm is None:
            raise ValueError(f"{self.name} requires a compression algorithm")
        n = plan.num_nodes
        # ``as_cpu``: costed by the GPU-kind builder method but executed on
        # the host-CPU executor (the OSS on-CPU codec path).
        worker_cpu = ({"on_cpu": True, "as_cpu": True}
                      if self.worker_on_cpu else {})
        server_rr = 0
        for grad in model.gradients:
            parts = partition_sizes(grad.nbytes, self.part_bytes)
            for p, part in enumerate(parts):
                server = server_rr % n
                server_rr += 1
                label = f"{grad.name}.p{p}"
                size = SizeExpr(part)
                wire = SizeExpr(part, compressed=True)

                merges = []
                for w in range(n):
                    # Worker: staging copy + encode of this slice.
                    stage = plan.add(
                        "copy", w, f"stage:{label}@{w}", size,
                        deps=[ReadyRef(w, grad.name)], grad=grad.name)
                    enc = plan.add(
                        "encode", w, f"enc:{label}@{w}", size, deps=[stage],
                        grad=grad.name, **worker_cpu)
                    if w == server:
                        arrived = enc
                    else:
                        arrived = plan.add(
                            "send", w, f"push:{label}@{w}", wire,
                            deps=[enc], dst=server, grad=grad.name)
                    # Server (host CPU): decode then accumulate -- two
                    # separate steps, never fused (no ``fusable`` marks).
                    dec = plan.add(
                        "decode", server, f"srv-dec:{label}@{w}", size,
                        deps=[arrived], grad=grad.name, on_cpu=True,
                        allocates_output=True, as_cpu=True)
                    agg = plan.add(
                        "cpu", server, f"srv-agg:{label}@{w}", size,
                        deps=[dec], grad=grad.name)
                    merges.append(agg)

                # Server re-encodes the aggregate on the CPU, then pulls.
                srv_enc = plan.add(
                    "encode", server, f"srv-enc:{label}", size, deps=merges,
                    grad=grad.name, on_cpu=True, as_cpu=True)
                for w in range(n):
                    if w == server:
                        arrived = srv_enc
                    else:
                        arrived = plan.add(
                            "send", server, f"pull:{label}@{w}", wire,
                            deps=[srv_enc], dst=w, grad=grad.name)
                    unstage = plan.add(
                        "copy", w, f"unstage:{label}@{w}", size,
                        deps=[arrived], grad=grad.name)
                    dec = plan.add(
                        "decode", w, f"dec:{label}@{w}", size,
                        deps=[unstage], grad=grad.name,
                        allocates_output=True, **worker_cpu)
                    plan.add("barrier", w, f"done:{label}@{w}", deps=[dec],
                             grad=grad.name)


class RingOSSCompression(Strategy):
    """Ring allgather of compressed gradients (Ring(OSS-DGC))."""

    name = "ring-oss"
    compression = True

    def passes(self) -> List[Pass]:
        # Per-buffer aggregation uses the fused decode+merge kernel; the
        # CaSync-only optimizations (partition/bulk/selective) stay off.
        return [FuseDecodeMergePass()]

    def expand(self, plan: SyncPlan, pctx: PassContext,
               model: ModelSpec) -> None:
        if pctx.algorithm is None:
            raise ValueError(f"{self.name} requires a compression algorithm")
        n = plan.num_nodes
        if n == 1:
            for grad in model.gradients:
                plan.add("barrier", 0, f"done:{grad.name}",
                         deps=[ReadyRef(0, grad.name)], grad=grad.name)
            return

        prev_done = [None] * n  # allreduce ops serialize, as in Horovod
        for grad in model.gradients:
            size = SizeExpr(grad.nbytes)
            wire = SizeExpr(grad.nbytes, compressed=True)
            encodes = []
            for i in range(n):
                deps = [ReadyRef(i, grad.name)]
                if prev_done[i] is not None:
                    deps.append(prev_done[i])
                encodes.append(plan.add(
                    "encode", i, f"enc:{grad.name}@{i}", size, deps=deps,
                    grad=grad.name))

            # Allgather: at step s, node i forwards the buffer that
            # originated at node (i - s) mod n to its successor.
            sends = {}
            for step in range(n - 1):
                for i in range(n):
                    if step == 0:
                        deps = [encodes[i]]
                    else:
                        deps = [sends[((i - 1) % n, step - 1)]]
                    sends[(i, step)] = plan.add(
                        "send", i, f"ag:{grad.name}.{step}@{i}", wire,
                        deps=deps, dst=(i + 1) % n, grad=grad.name)

            # Coarse-grained: every node decodes + merges all n buffers
            # only after its whole allgather completed (no pipelining).
            for i in range(n):
                all_received = [sends[((i - 1) % n, step)]
                                for step in range(n - 1)] + [encodes[i]]
                last = plan.add(
                    "barrier", i, f"ag-done:{grad.name}@{i}",
                    deps=all_received, grad=grad.name)
                for buf in range(n):
                    dec = plan.add(
                        "decode", i, f"agg:{grad.name}.{buf}@{i}", size,
                        deps=[last], grad=grad.name, fusable=True)
                    last = plan.add(
                        "merge", i, f"agg:{grad.name}.{buf}@{i}", size,
                        deps=[dec], grad=grad.name, fusable=True)
                prev_done[i] = plan.add(
                    "barrier", i, f"done:{grad.name}@{i}", deps=[last],
                    grad=grad.name)
