"""CaSync synchronization strategies: CaSync-PS and CaSync-Ring (§3).

Both strategies are SyncPlan IR frontends: :meth:`expand` emits the
structural op stream (the five primitives composed per topology), and the
three CaSync optimizations are independent passes selected by
:meth:`passes` -- the Fig. 11 ablation ladder is literally "run with a
pass removed":

* ``pipelining`` -> :class:`~repro.casync.passes.PartitionPass` --
  partition gradients (per the plan's K) so encode of one partition
  overlaps the transfer of another; with the pass absent, a gradient is
  encoded whole before any byte moves and decoded whole after every byte
  arrives (the OSS co-design shape).
* ``bulk`` -> :class:`~repro.casync.passes.BulkRoutePass` -- route small
  eligible transfers through the global coordinator (message batching per
  link) and mark the plan for GPU batch compression.  Enable the engines
  via ``simulate_iteration(use_coordinator=True, batch_compression=True)``.
* ``selective`` -> :class:`~repro.casync.passes.SelectivePass` -- honor
  the §3.3 planner's per-gradient <compress?, K> plan; with the pass
  absent, everything is compressed and K falls back to the fixed
  partitioning rule in :class:`~repro.casync.passes.PassConfig`.

Decode+merge fusion (:class:`~repro.casync.passes.FuseDecodeMergePass`)
is part of the CaSync architecture itself (§5) and always on.

CaSync aggregators run on the GPU (unlike BytePS's host-CPU servers), and
workers co-locate with aggregators (§6.1).
"""

from __future__ import annotations

from typing import List

from ..casync.ir import ReadyRef, SizeExpr, SyncPlan
from ..casync.passes import (
    DEFAULT_PASS_CONFIG,
    Pass,
    PassContext,
    get_pass,
)
from ..casync.topology import ps_topology, ring_topology
from ..models import GradientSpec, ModelSpec
from .base import Strategy

__all__ = ["CaSyncPS", "CaSyncRing"]

#: Back-compat re-exports; the authoritative values live in
#: :class:`~repro.casync.passes.PassConfig` so the strategies and the
#: coordinator share one source of truth.
BULK_ELIGIBLE_BYTES = DEFAULT_PASS_CONFIG.bulk_eligible_bytes
DEFAULT_PART_BYTES = DEFAULT_PASS_CONFIG.default_part_bytes


class _CaSyncBase(Strategy):
    compression = True

    def __init__(self, pipelining: bool = True, bulk: bool = True,
                 selective: bool = True, adaptive: bool = False,
                 extra_passes=()):
        self.pipelining = pipelining
        self.bulk = bulk
        self.selective = selective
        #: Insert AdaptivePass (after selective, before partition) so a
        #: DecisionMap threaded through the SyncContext lands on the
        #: directives; requires decisions= at simulate time.
        self.adaptive = adaptive
        #: Registry names of additional passes appended after the
        #: built-ins -- the plug-in point for third-party passes
        #: (repro.api.register_pass).  Unknown names raise ConfigError.
        self.extra_passes = tuple(extra_passes)

    def pass_names(self) -> List[str]:
        names: List[str] = []
        if self.selective:
            names.append("selective")
        if self.adaptive:
            names.append("adaptive")
        if self.pipelining:
            names.append("partition")
        names.append("fuse-decode-merge")
        if self.bulk:
            names.append("bulk-route")
        names.extend(self.extra_passes)
        return names

    def passes(self) -> List[Pass]:
        return [get_pass(name)() for name in self.pass_names()]


class CaSyncPS(_CaSyncBase):
    """CaSync parameter server with GPU-side, co-located aggregators."""

    name = "casync-ps"

    def expand(self, plan: SyncPlan, pctx: PassContext,
               model: ModelSpec) -> None:
        if pctx.algorithm is None:
            raise ValueError(f"{self.name} requires a compression algorithm")
        n = plan.num_nodes
        # §3.1: the bipartite worker<->aggregator topology is decoupled
        # from the strategy; aggregators rotate over the topology's
        # aggregator set for load balance.
        topology = ps_topology(n, colocated=True)
        aggregator_pool = topology.aggregators()
        agg_rr = 0
        for grad in model.gradients:
            directive = plan.directive(grad.name)
            k = directive.partitions
            part = grad.nbytes / k
            wire = SizeExpr(part, compressed=directive.compress)
            for p in range(k):
                aggregator = aggregator_pool[agg_rr % len(aggregator_pool)]
                agg_rr += 1
                label = f"{grad.name}.p{p}"

                merges = []
                for w in range(n):
                    src_dep = ReadyRef(w, grad.name)
                    if directive.compress:
                        src_dep = plan.add(
                            "encode", w, f"enc:{label}@{w}", SizeExpr(part),
                            deps=[src_dep], grad=grad.name)
                    if w != aggregator:
                        src_dep = plan.add(
                            "send", w, f"push:{label}@{w}", wire,
                            deps=[src_dep], dst=aggregator, grad=grad.name,
                            bulk_eligible=True)
                    # GPU-side aggregation; the fusion pass collapses the
                    # decode+merge pair into the §5 fused kernel.
                    if directive.compress:
                        dec = plan.add(
                            "decode", aggregator, f"agg:{label}@{w}",
                            SizeExpr(part), deps=[src_dep], grad=grad.name,
                            fusable=True)
                        agg = plan.add(
                            "merge", aggregator, f"agg:{label}@{w}",
                            SizeExpr(part), deps=[dec], grad=grad.name,
                            fusable=True)
                    else:
                        agg = plan.add(
                            "merge", aggregator, f"agg:{label}@{w}",
                            SizeExpr(part), deps=[src_dep], grad=grad.name)
                    merges.append(agg)

                tail = merges
                if directive.compress:
                    tail = [plan.add(
                        "encode", aggregator, f"enc-out:{label}",
                        SizeExpr(part), deps=merges, grad=grad.name)]
                for w in range(n):
                    if w == aggregator:
                        plan.add("barrier", w, f"done:{label}@{w}",
                                 deps=tail, grad=grad.name)
                        continue
                    pull = plan.add(
                        "send", aggregator, f"pull:{label}@{w}", wire,
                        deps=tail, dst=w, grad=grad.name, bulk_eligible=True)
                    if directive.compress:
                        dec = plan.add(
                            "decode", w, f"dec:{label}@{w}", SizeExpr(part),
                            deps=[pull], grad=grad.name)
                        plan.add("barrier", w, f"done:{label}@{w}",
                                 deps=[dec], grad=grad.name)
                    else:
                        plan.add("barrier", w, f"done:{label}@{w}",
                                 deps=[pull], grad=grad.name)


class CaSyncRing(_CaSyncBase):
    """CaSync ring: hop-wise decode+merge+encode, chunk-pipelined."""

    name = "casync-ring"

    def expand(self, plan: SyncPlan, pctx: PassContext,
               model: ModelSpec) -> None:
        if pctx.algorithm is None:
            raise ValueError(f"{self.name} requires a compression algorithm")
        n = plan.num_nodes
        if n == 1:
            for grad in model.gradients:
                plan.add("barrier", 0, f"done:{grad.name}",
                         deps=[ReadyRef(0, grad.name)], grad=grad.name)
            return
        # §3.1: clockwise ring edges come from the topology graph.
        topology = ring_topology(n)

        # Bulk communication on a ring topology: gradients the planner left
        # uncompressed are fused into buckets and allreduced raw, instead of
        # paying 2(N-1) per-gradient micro-hops (§3.2's batched time slots).
        raw: List[GradientSpec] = []
        for grad in model.gradients:
            directive = plan.directive(grad.name)
            if not directive.compress:
                raw.append(grad)
                continue
            k = directive.partitions
            part = grad.nbytes / k
            wire = SizeExpr(part, compressed=True)
            for c in range(k):
                start = c % n
                label = f"{grad.name}.c{c}"
                # Aggregation: n-1 hops; each hop encodes its partial,
                # sends, and the receiver decode+merges (fused by the
                # fusion pass).
                prev = None
                for step in range(n - 1):
                    holder = (start + step) % n
                    nxt = topology.successor(holder)
                    deps = [ReadyRef(holder, grad.name)]
                    if prev is not None:
                        deps.append(prev)
                    enc = plan.add(
                        "encode", holder, f"enc:{label}.{step}",
                        SizeExpr(part), deps=deps, grad=grad.name)
                    # Ring hops are serial chains: routing them through the
                    # coordinator would add a flush delay per hop, so they
                    # are never bulk-eligible; CaSync-Ring's bulk benefits
                    # come from batch compression and raw-bucket fusion.
                    send = plan.add(
                        "send", holder, f"hop:{label}.{step}", wire,
                        deps=[enc], dst=nxt, grad=grad.name)
                    dec = plan.add(
                        "decode", nxt, f"agg:{label}.{step}", SizeExpr(part),
                        deps=[send, ReadyRef(nxt, grad.name)],
                        grad=grad.name, fusable=True)
                    prev = plan.add(
                        "merge", nxt, f"agg:{label}.{step}", SizeExpr(part),
                        deps=[dec], grad=grad.name, fusable=True)

                # Dissemination: encode the final value once, then forward
                # the compressed buffer n-1 hops; receivers decode locally
                # (overlapping the next hop's transfer).
                final_holder = (start + n - 1) % n
                head = plan.add(
                    "encode", final_holder, f"enc-final:{label}",
                    SizeExpr(part), deps=[prev], grad=grad.name)
                plan.add("barrier", final_holder, f"done:{label}",
                         deps=[prev], grad=grad.name)
                hop_dep = head
                for step in range(n - 1):
                    holder = (final_holder + step) % n
                    nxt = topology.successor(holder)
                    send = plan.add(
                        "send", holder, f"bcast:{label}.{step}", wire,
                        deps=[hop_dep], dst=nxt, grad=grad.name)
                    hop_dep = send
                    dec = plan.add(
                        "decode", nxt, f"dec:{label}.{step}", SizeExpr(part),
                        deps=[send], grad=grad.name)
                    plan.add("barrier", nxt, f"done:{label}@{nxt}",
                             deps=[dec], grad=grad.name)

        self._raw_ring(plan, raw)

    def _raw_ring(self, plan: SyncPlan, raw: List[GradientSpec],
                  bucket_bytes: float = 4 * 1024 * 1024) -> None:
        """Fused raw allreduce of the planner's uncompressed gradients."""
        from .ring import bucketize  # local import avoids a cycle

        n = plan.num_nodes
        for b, bucket in enumerate(bucketize(raw, bucket_bytes)):
            size = sum(g.nbytes for g in bucket)
            chunk = SizeExpr(size / n)
            ready = [[ReadyRef(i, g.name) for g in bucket]
                     for i in range(n)]
            sends = {}
            merges = {}
            for step in range(n - 1):
                for i in range(n):
                    deps = (list(ready[i]) if step == 0
                            else [merges[(i, step - 1)]])
                    sends[(i, step)] = plan.add(
                        "send", i, f"raw-rs{b}.{step}@{i}", chunk,
                        deps=deps, dst=(i + 1) % n)
                for i in range(n):
                    merges[(i, step)] = plan.add(
                        "merge", i, f"raw-mrg{b}.{step}@{i}", chunk,
                        deps=[sends[((i - 1) % n, step)]] + list(ready[i]))
            ag = {}
            for step in range(n - 1):
                for i in range(n):
                    deps = ([merges[(i, n - 2)]] if step == 0
                            else [ag[((i - 1) % n, step - 1)]])
                    ag[(i, step)] = plan.add(
                        "send", i, f"raw-ag{b}.{step}@{i}", chunk,
                        deps=deps, dst=(i + 1) % n)
            for i in range(n):
                deps = [merges[(i, n - 2)]] + [
                    ag[((i - 1) % n, step)] for step in range(n - 1)]
                plan.add("barrier", i, f"raw-done{b}@{i}", deps=deps)
