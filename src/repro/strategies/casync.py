"""CaSync synchronization strategies: CaSync-PS and CaSync-Ring (§3).

Both strategies compose the five primitives under the task-graph
architecture, with the three CaSync optimizations individually switchable
for the Fig. 11 ablation:

* ``pipelining`` -- partition gradients (per the plan's K) so encode of
  one partition overlaps the transfer of another, and fuse decode+merge;
  with pipelining off, a gradient is encoded whole before any byte moves
  and decoded whole after every byte arrives (the OSS co-design shape).
* ``bulk`` -- route small transfers through the global coordinator
  (message batching per link) and enable batch compression on the GPU
  (one launch for many small kernels).  Enable via
  ``simulate_iteration(use_coordinator=True, batch_compression=True)``;
  the strategy marks which sends are eligible.
* ``selective`` -- honor the §3.3 planner's per-gradient <compress?, K>
  plan; with it off, everything is compressed and K falls back to a fixed
  partitioning rule.

CaSync aggregators run on the GPU (unlike BytePS's host-CPU servers), and
workers co-locate with aggregators (§6.1).
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..casync.planner import GradientPlan
from ..casync.tasks import TaskGraph
from ..casync.topology import Topology, ps_topology, ring_topology
from ..models import GradientSpec, ModelSpec
from .base import Strategy, SyncContext, TaskBuilder

__all__ = ["CaSyncPS", "CaSyncRing"]

#: Transfers below this size are routed through the bulk coordinator.
BULK_ELIGIBLE_BYTES = 256 * 1024
#: Fallback partition size when selective planning is off.
DEFAULT_PART_BYTES = 4 * 1024 * 1024


class _CaSyncBase(Strategy):
    compression = True

    def __init__(self, pipelining: bool = True, bulk: bool = True,
                 selective: bool = True):
        self.pipelining = pipelining
        self.bulk = bulk
        self.selective = selective

    def _plan(self, ctx: SyncContext, grad: GradientSpec) -> GradientPlan:
        if self.selective:
            plan = ctx.plan_for(grad)
            if plan is None:
                raise ValueError(
                    f"selective mode needs a plan for {grad.name}; "
                    "pass plans= to simulate_iteration")
            if not self.pipelining and plan.partitions > 1:
                plan = GradientPlan(plan.name, plan.nbytes, plan.compress,
                                    1, plan.predicted_time)
            return plan
        if self.pipelining:
            k = min(ctx.num_nodes,
                    max(1, math.ceil(grad.nbytes / DEFAULT_PART_BYTES)))
        else:
            k = 1
        return GradientPlan(name=grad.name, nbytes=grad.nbytes,
                            compress=True, partitions=k, predicted_time=0.0)

    def _bulk_flag(self, nbytes: float) -> bool:
        return self.bulk and nbytes < BULK_ELIGIBLE_BYTES


class CaSyncPS(_CaSyncBase):
    """CaSync parameter server with GPU-side, co-located aggregators."""

    name = "casync-ps"

    def build(self, ctx: SyncContext, model: ModelSpec) -> TaskGraph:
        if ctx.algorithm is None:
            raise ValueError(f"{self.name} requires a compression algorithm")
        graph = TaskGraph(ctx.env)
        builder = TaskBuilder(ctx)
        n = ctx.num_nodes
        # §3.1: the bipartite worker<->aggregator topology is decoupled
        # from the strategy; aggregators rotate over the topology's
        # aggregator set for load balance.
        topology = ps_topology(n, colocated=True)
        aggregator_pool = topology.aggregators()
        agg_rr = 0
        for grad in model.gradients:
            plan = self._plan(ctx, grad)
            k = plan.partitions
            part = grad.nbytes / k
            compressed = builder.compressed_nbytes(part)
            wire = compressed if plan.compress else part
            for p in range(k):
                aggregator = aggregator_pool[agg_rr % len(aggregator_pool)]
                agg_rr += 1
                label = f"{grad.name}.p{p}"

                merges = []
                for w in range(n):
                    src_dep = ctx.ready_event(w, grad)
                    if plan.compress:
                        enc = graph.add(
                            builder.encode(w, part, f"enc:{label}@{w}"),
                            deps=[src_dep])
                        src_dep = enc
                    if w != aggregator:
                        src_dep = graph.add(
                            builder.send(w, aggregator, wire,
                                         f"push:{label}@{w}",
                                         bulk=self._bulk_flag(wire)),
                            deps=[src_dep])
                    # GPU-side aggregation; decode fuses with merge.
                    if plan.compress:
                        agg = graph.add(
                            builder.aggregate_received(
                                aggregator, part, f"agg:{label}@{w}"),
                            deps=[src_dep])
                    else:
                        agg = graph.add(
                            builder.merge(aggregator, part,
                                          f"agg:{label}@{w}"),
                            deps=[src_dep])
                    merges.append(agg)

                tail = merges
                if plan.compress:
                    tail = [graph.add(
                        builder.encode(aggregator, part, f"enc-out:{label}"),
                        deps=merges)]
                for w in range(n):
                    if w == aggregator:
                        graph.add(builder.notify(w, f"done:{label}@{w}"),
                                  deps=tail)
                        continue
                    pull = graph.add(
                        builder.send(aggregator, w, wire,
                                     f"pull:{label}@{w}",
                                     bulk=self._bulk_flag(wire)),
                        deps=tail)
                    if plan.compress:
                        dec = graph.add(
                            builder.decode(w, part, f"dec:{label}@{w}"),
                            deps=[pull])
                        graph.add(builder.notify(w, f"done:{label}@{w}"),
                                  deps=[dec])
                    else:
                        graph.add(builder.notify(w, f"done:{label}@{w}"),
                                  deps=[pull])
        return graph


class CaSyncRing(_CaSyncBase):
    """CaSync ring: hop-wise decode+merge+encode, chunk-pipelined."""

    name = "casync-ring"

    def build(self, ctx: SyncContext, model: ModelSpec) -> TaskGraph:
        if ctx.algorithm is None:
            raise ValueError(f"{self.name} requires a compression algorithm")
        graph = TaskGraph(ctx.env)
        builder = TaskBuilder(ctx)
        n = ctx.num_nodes
        if n == 1:
            for grad in model.gradients:
                graph.add(builder.notify(0, f"done:{grad.name}"),
                          deps=[ctx.ready_event(0, grad)])
            return graph
        # §3.1: clockwise ring edges come from the topology graph.
        topology = ring_topology(n)

        # Bulk communication on a ring topology: gradients the planner left
        # uncompressed are fused into buckets and allreduced raw, instead of
        # paying 2(N-1) per-gradient micro-hops (§3.2's batched time slots).
        raw: List[GradientSpec] = []
        for grad in model.gradients:
            plan = self._plan(ctx, grad)
            if not plan.compress:
                raw.append(grad)
                continue
            k = plan.partitions
            part = grad.nbytes / k
            compressed = builder.compressed_nbytes(part)
            wire = compressed if plan.compress else part
            for c in range(k):
                start = c % n
                label = f"{grad.name}.c{c}"
                # Aggregation: n-1 hops; each hop encodes its partial
                # (if compressing), sends, and the receiver decode+merges.
                prev = None
                for step in range(n - 1):
                    holder = (start + step) % n
                    nxt = topology.successor(holder)
                    deps = [ctx.ready_event(holder, grad)]
                    if prev is not None:
                        deps.append(prev)
                    if plan.compress:
                        enc = graph.add(
                            builder.encode(holder, part,
                                           f"enc:{label}.{step}"),
                            deps=deps)
                        deps = [enc]
                    # Ring hops are serial chains: routing them through the
                    # coordinator would add a flush delay per hop, so
                    # CaSync-Ring's bulk benefits come from batch
                    # compression and raw-bucket fusion instead.
                    send = graph.add(
                        builder.send(holder, nxt, wire,
                                     f"hop:{label}.{step}"),
                        deps=deps)
                    recv_deps = [send, ctx.ready_event(nxt, grad)]
                    if plan.compress:
                        prev = graph.add(
                            builder.aggregate_received(nxt, part,
                                                       f"agg:{label}.{step}"),
                            deps=recv_deps)
                    else:
                        prev = graph.add(
                            builder.merge(nxt, part, f"agg:{label}.{step}"),
                            deps=recv_deps)

                # Dissemination: encode the final value once, then forward
                # the compressed buffer n-1 hops; receivers decode locally
                # (overlapping the next hop's transfer).
                final_holder = (start + n - 1) % n
                if plan.compress:
                    head = graph.add(
                        builder.encode(final_holder, part,
                                       f"enc-final:{label}"),
                        deps=[prev])
                else:
                    head = prev
                done_marks = {final_holder: graph.add(
                    builder.notify(final_holder, f"done:{label}"),
                    deps=[prev])}
                hop_dep = head
                for step in range(n - 1):
                    holder = (final_holder + step) % n
                    nxt = topology.successor(holder)
                    send = graph.add(
                        builder.send(holder, nxt, wire,
                                     f"bcast:{label}.{step}"),
                        deps=[hop_dep])
                    hop_dep = send
                    if plan.compress:
                        dec = graph.add(
                            builder.decode(nxt, part, f"dec:{label}.{step}"),
                            deps=[send])
                        done_marks[nxt] = graph.add(
                            builder.notify(nxt, f"done:{label}@{nxt}"),
                            deps=[dec])
                    else:
                        done_marks[nxt] = graph.add(
                            builder.notify(nxt, f"done:{label}@{nxt}"),
                            deps=[send])

        self._raw_ring(ctx, graph, builder, raw)
        return graph

    def _raw_ring(self, ctx: SyncContext, graph: TaskGraph,
                  builder: TaskBuilder, raw: List[GradientSpec],
                  bucket_bytes: float = 4 * 1024 * 1024) -> None:
        """Fused raw allreduce of the planner's uncompressed gradients."""
        from .ring import bucketize  # local import avoids a cycle

        n = ctx.num_nodes
        for b, bucket in enumerate(bucketize(raw, bucket_bytes)):
            size = sum(g.nbytes for g in bucket)
            chunk = size / n
            ready = [[ctx.ready_event(i, g) for g in bucket]
                     for i in range(n)]
            sends = {}
            merges = {}
            for step in range(n - 1):
                for i in range(n):
                    deps = (list(ready[i]) if step == 0
                            else [merges[(i, step - 1)]])
                    sends[(i, step)] = graph.add(
                        builder.send(i, (i + 1) % n, chunk,
                                     f"raw-rs{b}.{step}@{i}"),
                        deps=deps)
                for i in range(n):
                    merges[(i, step)] = graph.add(
                        builder.merge(i, chunk, f"raw-mrg{b}.{step}@{i}"),
                        deps=[sends[((i - 1) % n, step)]] + list(ready[i]))
            ag = {}
            for step in range(n - 1):
                for i in range(n):
                    deps = ([merges[(i, n - 2)]] if step == 0
                            else [ag[((i - 1) % n, step - 1)]])
                    ag[(i, step)] = graph.add(
                        builder.send(i, (i + 1) % n, chunk,
                                     f"raw-ag{b}.{step}@{i}"),
                        deps=deps)
            for i in range(n):
                deps = [merges[(i, n - 2)]] + [
                    ag[((i - 1) % n, step)] for step in range(n - 1)]
                graph.add(builder.notify(i, f"raw-done{b}@{i}"), deps=deps)
