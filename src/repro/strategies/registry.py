"""Strategy registry: name -> factory, mirroring the algorithm registry.

Strategies used to be hand-wired into ``repro.experiments.common.SYSTEMS``;
this registry makes them first-class lookups, so new synchronization
strategies integrate the same way new compression algorithms do::

    from repro.strategies.registry import register_strategy, get_strategy

    register_strategy("my-sync", MySyncStrategy)
    strategy = get_strategy("my-sync", pipelining=False)

Historical names ("hipress-ps" / "hipress-ring", the paper's product
branding for the CaSync variants) resolve through :data:`DEPRECATED_ALIASES`
with a :class:`DeprecationWarning`; use "casync-ps" / "casync-ring".
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List

from .base import Strategy

__all__ = [
    "DEPRECATED_ALIASES",
    "available_strategies",
    "get_strategy",
    "register_strategy",
    "resolve_strategy_name",
]

_REGISTRY: Dict[str, Callable[..., Strategy]] = {}

#: Old name -> canonical registry name.  Lookups through an alias warn.
DEPRECATED_ALIASES: Dict[str, str] = {
    "hipress-ps": "casync-ps",
    "hipress-ring": "casync-ring",
}


def register_strategy(name: str, factory: Callable[..., Strategy],
                      overwrite: bool = False) -> None:
    """Register a strategy factory under ``name``."""
    if name in DEPRECATED_ALIASES:
        raise ValueError(
            f"{name!r} is a deprecated alias for "
            f"{DEPRECATED_ALIASES[name]!r}; register the canonical name")
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"strategy {name!r} is already registered")
    _REGISTRY[name] = factory


def resolve_strategy_name(name: str) -> str:
    """Canonicalize ``name``, warning if it is a deprecated alias."""
    canonical = DEPRECATED_ALIASES.get(name)
    if canonical is not None:
        warnings.warn(
            f"strategy name {name!r} is deprecated; use {canonical!r}",
            DeprecationWarning, stacklevel=3)
        return canonical
    return name


def get_strategy(name: str, **params) -> Strategy:
    """Instantiate a registered strategy by (possibly deprecated) name."""
    canonical = resolve_strategy_name(name)
    try:
        factory = _REGISTRY[canonical]
    except KeyError:
        raise KeyError(
            f"unknown strategy {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**params)


def available_strategies() -> List[str]:
    """Canonical registered names, sorted (aliases excluded)."""
    return sorted(_REGISTRY)
