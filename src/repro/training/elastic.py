"""Elastic training: epoch-boundary roster transitions over a fleet.

The BSP simulator runs one synchronization round at a time over a fixed
set of ranks; elasticity lives *above* it.  :func:`run_elastic` walks a
:class:`~repro.faults.elastic.MembershipSchedule` epoch by epoch:

1. compute the epoch's :class:`~repro.faults.elastic.Roster` and derive
   the matching sub-cluster (:meth:`ClusterSpec.subset` -- survivors
   keep their per-node hardware and resolved links);
2. **re-plan**: rebuild the §3.3 selective plans and the strategy's task
   graph for the roster via :func:`repro.strategies.bind_roster`, whose
   :class:`~repro.casync.passes.MembershipPass` folds the (roster,
   epoch) into the graph-cache key -- a roster change is a new cache
   entry, never a silently reused wrong-sized collective;
3. lower the epoch's *mid-epoch* departures (fractional
   :class:`~repro.faults.schedule.NodeLeave` events) to
   :class:`~repro.faults.schedule.NodeCrash` events on local ranks and
   run the round under the robustness machinery -- the departed NIC's
   in-flight events are cancelled and the survivors either complete the
   round degraded or abort with a typed
   :class:`~repro.faults.errors.SyncAborted`;
4. an infeasible roster (fewer than ``min_roster`` survivors) raises a
   typed :class:`~repro.errors.ConfigError` -- elastic runs degrade
   loudly, never crash obscurely.

Determinism: everything here is a pure function of (model, cluster,
schedule, strategy config), so the same seeded churn schedule replays to
bit-identical per-epoch trace hashes (:func:`elastic_trace_hashes`) --
the contract tests/test_elastic_properties.py locks in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..cluster import ClusterSpec
from ..errors import ConfigError
from ..faults.elastic import MembershipSchedule, Roster
from ..faults.errors import SyncAborted
from ..faults.retry import RetryPolicy
from ..faults.schedule import FaultSchedule, NodeCrash
from ..models import ModelSpec
from ..strategies import Strategy, bind_roster
from .loop import IterationResult, make_plans, simulate_iteration
from .trace import trace_hash, trace_iteration

__all__ = [
    "EpochOutcome",
    "ElasticRunReport",
    "elastic_trace_hashes",
    "epoch_inputs",
    "run_elastic",
]


@dataclass(frozen=True)
class EpochOutcome:
    """One epoch of an elastic run."""

    epoch: int
    #: Global node ids enrolled at the epoch's start.
    roster: Tuple[int, ...]
    #: Mid-epoch departures as (global node, fraction-of-horizon).
    departures: Tuple[Tuple[int, float], ...]
    #: "ok" (round completed, possibly degraded) or "aborted" (typed
    #: SyncAborted under the round deadline).
    status: str
    #: Wall-clock charged to the epoch: the round's iteration time, or
    #: the abort deadline when the round gave up.
    elapsed_s: float
    #: The sub-cluster's name the epoch ran on.
    cluster: str
    #: Full per-iteration metrics (None when the round aborted).
    result: Optional[IterationResult] = None
    #: Why the round aborted (str(SyncAborted)), when it did.
    abort_reason: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass(frozen=True)
class ElasticRunReport:
    """A whole elastic run: one outcome per epoch plus totals."""

    model: str
    strategy: str
    schedule_token: str
    epochs: Tuple[EpochOutcome, ...]
    #: Sum of per-epoch elapsed time (completed and aborted epochs both
    #: cost wall clock).
    total_time_s: float
    #: Samples processed across completed epochs (an aborted epoch
    #: contributes nothing -- its round never committed).
    samples: float

    @property
    def completed_epochs(self) -> int:
        return sum(1 for e in self.epochs if e.ok)

    @property
    def mean_roster_size(self) -> float:
        return sum(len(e.roster) for e in self.epochs) / len(self.epochs)

    @property
    def goodput(self) -> float:
        """Committed samples per second over the whole run."""
        return self.samples / self.total_time_s if self.total_time_s else 0.0


def epoch_inputs(model: ModelSpec, cluster: ClusterSpec,
                 schedule: MembershipSchedule, epoch: int,
                 min_roster: Optional[int] = None,
                 epoch_horizon_s: Optional[float] = None
                 ) -> Tuple[Roster, ClusterSpec, FaultSchedule]:
    """Everything one epoch's round needs: roster, sub-cluster, faults.

    Raises a typed :class:`ConfigError` when the roster is infeasible
    (fewer than ``min_roster`` survivors -- default: the schedule's own
    floor).  Mid-epoch departures come back as a :class:`FaultSchedule`
    of :class:`NodeCrash` events on *local* ranks, timed at their
    fraction of ``epoch_horizon_s`` (default: twice the roster's slowest
    single-GPU iteration time, a deterministic stand-in for the epoch's
    span so the crash lands inside the round).
    """
    if schedule.num_nodes != cluster.num_nodes:
        raise ConfigError(
            "membership-fleet", schedule.num_nodes, [cluster.num_nodes],
            hint=f"the membership schedule describes a "
                 f"{schedule.num_nodes}-node fleet but cluster "
                 f"{cluster.name!r} has {cluster.num_nodes} nodes")
    floor = schedule.min_roster if min_roster is None else min_roster
    roster = schedule.roster_entering(epoch)
    if len(roster) < floor:
        raise ConfigError(
            "roster", list(roster.nodes), [f">= {floor} nodes"],
            hint=f"epoch {epoch}'s roster is infeasible: distributed "
                 f"training needs at least {floor} enrolled nodes")
    sub = cluster.subset(roster.nodes)
    departures = schedule.departures_during(epoch)
    if epoch_horizon_s is None:
        epoch_horizon_s = 2.0 * max(
            model.iteration_time(cluster.node_at(node).gpu)
            for node in roster)
    crashes = tuple(
        NodeCrash(at=fraction * epoch_horizon_s,
                  node=roster.local_rank(node))
        for node, fraction in departures
        if node in roster)
    return roster, sub, FaultSchedule(crashes)


def _epoch_strategy(strategy: Strategy, make_strategy, roster: Roster,
                    epoch: int) -> Strategy:
    fresh = make_strategy() if make_strategy is not None else strategy
    return bind_roster(fresh, roster.nodes, epoch=epoch)


def run_elastic(model: ModelSpec, cluster: ClusterSpec,
                strategy: Strategy,
                schedule: MembershipSchedule,
                epochs: Optional[int] = None,
                algorithm=None,
                planner_kind: Optional[str] = None,
                use_coordinator: bool = False,
                batch_compression: bool = False,
                retry_policy: Optional[RetryPolicy] = None,
                sync_deadline_s: Optional[float] = None,
                heartbeat_timeout_s: float = 0.02,
                epoch_horizon_s: Optional[float] = None,
                min_roster: Optional[int] = None,
                make_strategy=None,
                pass_config=None) -> ElasticRunReport:
    """Run ``epochs`` training epochs under an elastic membership.

    One simulated BSP round stands in for each epoch (the simulator's
    usual contraction: per-iteration behaviour is what distinguishes
    configurations).  ``strategy`` is re-bound to every epoch's roster;
    pass ``make_strategy`` (a zero-arg factory) if the strategy type
    keeps per-run state and should be rebuilt per epoch.  ``algorithm``
    plus ``planner_kind`` re-run the §3.3 selective planner per epoch on
    the epoch's sub-cluster -- the planner's verdicts shift with the
    roster, which is the point.

    Epochs with mid-epoch departures run under the robustness machinery
    (``retry_policy`` defaulting to aggressive retries, and the optional
    ``sync_deadline_s`` round deadline): they complete degraded or are
    recorded as aborted -- a typed outcome either way.
    """
    total = schedule.epochs() if epochs is None else epochs
    if total < 1:
        raise ValueError(f"epochs must be >= 1, got {total}")
    outcomes: List[EpochOutcome] = []
    total_time = 0.0
    samples = 0.0
    for epoch in range(total):
        roster, sub, crashes = epoch_inputs(
            model, cluster, schedule, epoch, min_roster=min_roster,
            epoch_horizon_s=epoch_horizon_s)
        bound = _epoch_strategy(strategy, make_strategy, roster, epoch)
        plans = None
        if algorithm is not None and planner_kind is not None:
            plans = make_plans(model, sub, algorithm, planner_kind)
        policy = retry_policy
        if crashes and policy is None:
            policy = RetryPolicy.aggressive()
        try:
            result = simulate_iteration(
                model, sub, bound, algorithm=algorithm, plans=plans,
                use_coordinator=use_coordinator,
                batch_compression=batch_compression,
                fault_schedule=crashes if crashes else None,
                retry_policy=policy,
                sync_deadline_s=sync_deadline_s,
                heartbeat_timeout_s=heartbeat_timeout_s,
                pass_config=pass_config)
        except SyncAborted as abort:
            elapsed = (sync_deadline_s if sync_deadline_s is not None
                       else 0.0)
            outcomes.append(EpochOutcome(
                epoch=epoch, roster=roster.nodes,
                departures=schedule.departures_during(epoch),
                status="aborted", elapsed_s=elapsed, cluster=sub.name,
                abort_reason=str(abort)))
            total_time += elapsed
            continue
        outcomes.append(EpochOutcome(
            epoch=epoch, roster=roster.nodes,
            departures=schedule.departures_during(epoch),
            status="ok", elapsed_s=result.iteration_time,
            cluster=sub.name, result=result))
        total_time += result.iteration_time
        samples += result.total_gpus * result.batch_size
    return ElasticRunReport(
        model=model.name, strategy=strategy.name,
        schedule_token=schedule.token(), epochs=tuple(outcomes),
        total_time_s=total_time, samples=samples)


def elastic_trace_hashes(model: ModelSpec, cluster: ClusterSpec,
                         strategy: Strategy,
                         schedule: MembershipSchedule,
                         epochs: Optional[int] = None,
                         algorithm=None,
                         planner_kind: Optional[str] = None,
                         use_coordinator: bool = False,
                         batch_compression: bool = False,
                         retry_policy: Optional[RetryPolicy] = None,
                         sync_deadline_s: Optional[float] = None,
                         heartbeat_timeout_s: float = 0.02,
                         epoch_horizon_s: Optional[float] = None,
                         make_strategy=None) -> Tuple[str, ...]:
    """Per-epoch trace hashes of an elastic run (determinism proofs).

    The canonical event timeline of every epoch's round, hashed -- two
    replays of the same (model, cluster, schedule, strategy) must match
    bit for bit, and a static schedule's hashes must equal the plain
    (non-elastic) tracer's.  An epoch whose round aborts hashes the
    typed abort instead (``aborted:<reason class>``), so replay
    determinism covers failed rounds too.
    """
    total = schedule.epochs() if epochs is None else epochs
    hashes: List[str] = []
    for epoch in range(total):
        roster, sub, crashes = epoch_inputs(
            model, cluster, schedule, epoch,
            epoch_horizon_s=epoch_horizon_s)
        bound = _epoch_strategy(strategy, make_strategy, roster, epoch)
        plans = None
        if algorithm is not None and planner_kind is not None:
            plans = make_plans(model, sub, algorithm, planner_kind)
        policy = retry_policy
        if crashes and policy is None:
            policy = RetryPolicy.aggressive()
        try:
            trace = trace_iteration(
                model, sub, bound, algorithm=algorithm, plans=plans,
                use_coordinator=use_coordinator,
                batch_compression=batch_compression,
                fault_schedule=crashes if crashes else None,
                retry_policy=policy,
                sync_deadline_s=sync_deadline_s,
                heartbeat_timeout_s=heartbeat_timeout_s)
        except SyncAborted as abort:
            hashes.append(f"aborted:{type(abort).__name__}:"
                          f"{roster.token()}")
            continue
        hashes.append(trace_hash(trace))
    return tuple(hashes)
