"""Training-iteration simulation and metrics."""

from .loop import IterationResult, make_plans, simulate_iteration

__all__ = ["IterationResult", "make_plans", "simulate_iteration"]
