"""Training-iteration simulation and metrics."""

from .elastic import (
    ElasticRunReport,
    EpochOutcome,
    elastic_trace_hashes,
    epoch_inputs,
    run_elastic,
)
from .loop import IterationResult, make_plans, simulate_iteration

__all__ = [
    "ElasticRunReport",
    "EpochOutcome",
    "IterationResult",
    "elastic_trace_hashes",
    "epoch_inputs",
    "make_plans",
    "run_elastic",
    "simulate_iteration",
]
