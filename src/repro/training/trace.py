"""Chrome-trace export of a simulated iteration's task timeline.

``trace_iteration`` runs one iteration like
:func:`~repro.training.loop.simulate_iteration` but keeps the task graph
and converts every task's (start, finish) into Chrome Trace Event Format
(the JSON that ``chrome://tracing`` / Perfetto load), one row per node
with GPU-compute, GPU-compression, CPU, and network lanes.  This is the
debugging view the paper's Figure 9 nsight screenshots give their
authors, for this simulator.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..algorithms.base import CompressionAlgorithm
from ..casync.passes import DEFAULT_PASS_CONFIG, PassConfig
from ..casync.planner import GradientPlan
from ..casync.tasks import Coordinator, NodeEngine, run_graph
from ..cluster import ClusterSpec
from ..faults import (
    FaultInjector,
    FaultSchedule,
    Membership,
    NodeRestart,
    RetryPolicy,
    run_graph_robust,
)
from ..gpu import Gpu
from ..models import ModelSpec
from ..net import Fabric
from ..sim import Environment, Interrupt
from ..strategies.base import Strategy, SyncContext
from ..telemetry import TelemetryCollector, current_collector

__all__ = ["TraceEvent", "IterationTrace", "trace_iteration", "trace_hash"]

#: Lane (tid) assignment per task kind.
_LANES = {"encode": "gpu-compression", "decode": "gpu-compression",
          "merge": "gpu-compression", "copy": "gpu-compression",
          "cpu": "host-cpu", "send": "network"}


@dataclass(frozen=True)
class TraceEvent:
    name: str
    node: int
    lane: str
    start: float
    duration: float


@dataclass
class IterationTrace:
    events: List[TraceEvent]
    finish_time: float

    def to_chrome_trace(self) -> str:
        """Serialize to Chrome Trace Event Format JSON."""
        records = []
        for ev in self.events:
            records.append({
                "name": ev.name,
                "cat": ev.lane,
                "ph": "X",
                "ts": ev.start * 1e6,        # microseconds
                "dur": max(ev.duration, 1e-3) * 1e6,
                "pid": ev.node,
                "tid": ev.lane,
            })
        return json.dumps({"traceEvents": records,
                           "displayTimeUnit": "ms"}, indent=1)

    def events_on(self, node: int, lane: Optional[str] = None
                  ) -> List[TraceEvent]:
        return [e for e in self.events
                if e.node == node and (lane is None or e.lane == lane)]


def trace_iteration(model: ModelSpec, cluster: ClusterSpec,
                    strategy: Strategy,
                    algorithm: Optional[CompressionAlgorithm] = None,
                    plans: Optional[Dict[str, GradientPlan]] = None,
                    use_coordinator: bool = False,
                    batch_compression: bool = False,
                    fault_schedule: Optional[FaultSchedule] = None,
                    retry_policy: Optional[RetryPolicy] = None,
                    degradation: bool = True,
                    sync_deadline_s: Optional[float] = None,
                    heartbeat_timeout_s: float = 0.02,
                    telemetry: Optional[TelemetryCollector] = None,
                    pass_config: Optional[PassConfig] = None,
                    decisions=None) -> IterationTrace:
    """Simulate one iteration, returning the full task timeline.

    The fault parameters mirror
    :func:`~repro.training.loop.simulate_iteration`; with a non-empty
    ``fault_schedule`` the timeline shows the degraded round (retries,
    re-routed sends, dropped tasks) instead of the pristine one.
    """
    schedule = fault_schedule if fault_schedule is not None else cluster.faults
    faulty = schedule is not None and len(schedule) > 0
    robust = faulty or retry_policy is not None
    policy = retry_policy if retry_policy is not None else (
        RetryPolicy() if faulty else None)
    membership = Membership(cluster.num_nodes) if robust else None

    tel = telemetry if telemetry is not None else current_collector()
    env = Environment()
    env.telemetry = tel
    if tel is not None:
        tel.start_run(
            f"trace:{model.name}/{strategy.name}/{cluster.num_nodes}n")
    fabric = Fabric(env, cluster.num_nodes, cluster.network)
    gpus = [Gpu(env, cluster.node_at(i).gpu, index=i)
            for i in range(cluster.num_nodes)]
    pconf = pass_config if pass_config is not None else DEFAULT_PASS_CONFIG
    coordinator = (Coordinator(env, fabric,
                               size_threshold=pconf.coordinator_batch_bytes,
                               timeout_s=pconf.coordinator_timeout_s,
                               retry_policy=policy, membership=membership)
                   if use_coordinator else None)
    engines = [NodeEngine(env, i, gpus[i], fabric, coordinator=coordinator,
                          batch_compression=batch_compression,
                          retry_policy=policy, membership=membership,
                          degradation=degradation)
               for i in range(cluster.num_nodes)]
    injector = (FaultInjector(env, schedule, fabric=fabric, gpus=gpus,
                              engines=engines)
                if faulty else None)
    ready = {(node, grad.name): env.event()
             for node in range(cluster.num_nodes)
             for grad in model.gradients}
    ctx = SyncContext(env=env, cluster=cluster, fabric=fabric, gpus=gpus,
                      engines=engines, ready=ready, algorithm=algorithm,
                      plans=plans, coordinator=coordinator,
                      pass_config=pconf, decisions=decisions)
    graph = strategy.build(ctx, model)

    # One timing entry per distinct GPU model (one on homogeneous).
    timings = {}
    for node_spec in cluster.distinct_nodes():
        if node_spec.gpu not in timings:
            timings[node_spec.gpu] = (
                model.forward_time(node_spec.gpu),
                list(model.backward_schedule(node_spec.gpu)))

    def node_process(node: int):
        gpu = gpus[node]
        forward, backward = timings[cluster.node_at(node).gpu]
        recover_delay = 0.0
        while True:
            try:
                if recover_delay > 0:
                    yield env.timeout(recover_delay)
                yield from gpu.run_compute(forward)
                prev = 0.0
                for offset, grad in backward:
                    yield from gpu.run_compute(offset - prev)
                    prev = offset
                    if not ready[(node, grad.name)].triggered:
                        ready[(node, grad.name)].succeed()
                return
            except Interrupt:
                # Crashed; recover at the next scheduled restart (redoing
                # the lost compute), or stay down for the round.
                restarts = [] if schedule is None else [
                    ev.at for ev in schedule
                    if isinstance(ev, NodeRestart) and ev.node == node
                    and ev.at >= env.now]
                if not restarts:
                    return
                recover_delay = min(restarts) - env.now

    node_procs = [env.process(node_process(i), name=f"node{i}")
                  for i in range(cluster.num_nodes)]
    if robust:
        if injector is not None:
            for i, proc in enumerate(node_procs):
                injector.bind_node_process(i, proc)
        node_events = {n: [ready[(n, grad.name)] for grad in model.gradients]
                       for n in range(cluster.num_nodes)}
        report = run_graph_robust(
            env, graph, engines, membership, injector=injector,
            deadline_s=sync_deadline_s, degradation=degradation,
            heartbeat_timeout_s=heartbeat_timeout_s, node_events=node_events)
        finish = report.finish_time
        env.run()  # settle background retries so the timeline is complete
    else:
        finish = run_graph(env, graph, engines)

    events: List[TraceEvent] = []
    for task in graph.tasks:
        if task.kind == "notify" or task.started_at is None:
            continue
        start = task.started_at
        end = task.finished_at if task.finished_at is not None else start
        events.append(TraceEvent(
            name=task.label or task.kind, node=task.node,
            lane=_LANES.get(task.kind, task.kind),
            start=start, duration=max(0.0, end - start)))
    # GPU compute intervals come from the interval log.
    for node, gpu in enumerate(gpus):
        for start, end, category in gpu.log.intervals:
            if category == "compute":
                events.append(TraceEvent(
                    name="dnn-compute", node=node, lane="gpu-compute",
                    start=start, duration=end - start))
    events.sort(key=lambda e: (e.node, e.lane, e.start))
    return IterationTrace(events=events, finish_time=finish)


def trace_hash(trace: IterationTrace) -> str:
    """SHA-256 over the canonical event timeline.

    Two runs with the same seed, workload, and fault schedule must produce
    the same hash -- the determinism contract the regression tests lock in.
    Timestamps are rounded to the picosecond so the hash keys on simulated
    behaviour, not on float repr noise.
    """
    digest = hashlib.sha256()
    digest.update(f"finish:{trace.finish_time:.12f}\n".encode())
    for ev in trace.events:
        digest.update(
            f"{ev.node}|{ev.lane}|{ev.name}|{ev.start:.12f}|"
            f"{ev.duration:.12f}\n".encode())
    return digest.hexdigest()
