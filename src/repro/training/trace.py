"""Chrome-trace export of a simulated iteration's task timeline.

``trace_iteration`` runs one iteration like
:func:`~repro.training.loop.simulate_iteration` but keeps the task graph
and converts every task's (start, finish) into Chrome Trace Event Format
(the JSON that ``chrome://tracing`` / Perfetto load), one row per node
with GPU-compute, GPU-compression, CPU, and network lanes.  This is the
debugging view the paper's Figure 9 nsight screenshots give their
authors, for this simulator.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..algorithms.base import CompressionAlgorithm
from ..casync.planner import GradientPlan
from ..casync.tasks import Coordinator, NodeEngine, run_graph
from ..cluster import ClusterSpec
from ..gpu import Gpu
from ..models import ModelSpec
from ..net import Fabric
from ..sim import Environment
from ..strategies.base import Strategy, SyncContext

__all__ = ["TraceEvent", "IterationTrace", "trace_iteration"]

#: Lane (tid) assignment per task kind.
_LANES = {"encode": "gpu-compression", "decode": "gpu-compression",
          "merge": "gpu-compression", "copy": "gpu-compression",
          "cpu": "host-cpu", "send": "network"}


@dataclass(frozen=True)
class TraceEvent:
    name: str
    node: int
    lane: str
    start: float
    duration: float


@dataclass
class IterationTrace:
    events: List[TraceEvent]
    finish_time: float

    def to_chrome_trace(self) -> str:
        """Serialize to Chrome Trace Event Format JSON."""
        records = []
        for ev in self.events:
            records.append({
                "name": ev.name,
                "cat": ev.lane,
                "ph": "X",
                "ts": ev.start * 1e6,        # microseconds
                "dur": max(ev.duration, 1e-3) * 1e6,
                "pid": ev.node,
                "tid": ev.lane,
            })
        return json.dumps({"traceEvents": records,
                           "displayTimeUnit": "ms"}, indent=1)

    def events_on(self, node: int, lane: Optional[str] = None
                  ) -> List[TraceEvent]:
        return [e for e in self.events
                if e.node == node and (lane is None or e.lane == lane)]


def trace_iteration(model: ModelSpec, cluster: ClusterSpec,
                    strategy: Strategy,
                    algorithm: Optional[CompressionAlgorithm] = None,
                    plans: Optional[Dict[str, GradientPlan]] = None,
                    use_coordinator: bool = False,
                    batch_compression: bool = False) -> IterationTrace:
    """Simulate one iteration, returning the full task timeline."""
    env = Environment()
    fabric = Fabric(env, cluster.num_nodes, cluster.network)
    gpus = [Gpu(env, cluster.node.gpu, index=i)
            for i in range(cluster.num_nodes)]
    coordinator = Coordinator(env, fabric) if use_coordinator else None
    engines = [NodeEngine(env, i, gpus[i], fabric, coordinator=coordinator,
                          batch_compression=batch_compression)
               for i in range(cluster.num_nodes)]
    ready = {(node, grad.name): env.event()
             for node in range(cluster.num_nodes)
             for grad in model.gradients}
    ctx = SyncContext(env=env, cluster=cluster, fabric=fabric, gpus=gpus,
                      engines=engines, ready=ready, algorithm=algorithm,
                      plans=plans, coordinator=coordinator)
    graph = strategy.build(ctx, model)

    gpu_spec = cluster.node.gpu
    forward = model.forward_time(gpu_spec)
    schedule = list(model.backward_schedule(gpu_spec))

    def node_process(node: int):
        gpu = gpus[node]
        yield from gpu.run_compute(forward)
        prev = 0.0
        for offset, grad in schedule:
            yield from gpu.run_compute(offset - prev)
            prev = offset
            ready[(node, grad.name)].succeed()

    for i in range(cluster.num_nodes):
        env.process(node_process(i), name=f"node{i}")
    finish = run_graph(env, graph, engines)

    events: List[TraceEvent] = []
    for task in graph.tasks:
        if task.kind == "notify" or task.started_at is None:
            continue
        start = task.started_at
        end = task.finished_at if task.finished_at is not None else start
        events.append(TraceEvent(
            name=task.label or task.kind, node=task.node,
            lane=_LANES.get(task.kind, task.kind),
            start=start, duration=max(0.0, end - start)))
    # GPU compute intervals come from the interval log.
    for node, gpu in enumerate(gpus):
        for start, end, category in gpu.log.intervals:
            if category == "compute":
                events.append(TraceEvent(
                    name="dnn-compute", node=node, lane="gpu-compute",
                    start=start, duration=end - start))
    events.sort(key=lambda e: (e.node, e.lane, e.start))
    return IterationTrace(events=events, finish_time=finish)
