"""End-to-end training-iteration simulation.

Combines the pieces -- model backward schedule, GPU compute, local (intra-
node) aggregation, a synchronization strategy's task graph, and the network
fabric -- into one simulated BSP iteration, and reports the metrics every
experiment consumes: iteration time, throughput, scaling efficiency,
communication ratio, and GPU-utilization timelines.

One steady-state iteration is simulated: forward, then backward producing
gradients layer by layer (each becoming eligible for synchronization after
intra-node aggregation), with synchronization overlapping backward exactly
as far as the strategy's task dependencies allow.  The iteration ends when
every node holds every aggregated gradient (BSP barrier) and the optimizer
step has been applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..algorithms.base import CompressionAlgorithm
from ..casync.planner import CostModel, GradientPlan, SelectivePlanner
from ..casync.memory import peak_buffer_memory
from ..casync.tasks import Coordinator, NodeEngine, TaskGraph, run_graph
from ..cluster import ClusterSpec
from ..gpu import Gpu
from ..models import ModelSpec
from ..net import Fabric
from ..sim import Environment
from ..strategies.base import Strategy, SyncContext

__all__ = ["IterationResult", "simulate_iteration", "scaling_efficiency"]

#: Optimizer (SGD update) cost as a fraction of compute time.
OPTIMIZER_FRACTION = 0.02


@dataclass(frozen=True)
class IterationResult:
    """Metrics from one simulated training iteration."""

    model: str
    strategy: str
    num_nodes: int
    gpus_per_node: int
    iteration_time: float
    compute_time: float
    batch_size: int

    #: Mean NIC busy fraction over the iteration (Table 1 "communication
    #: ratio": total communication activity share of training time).
    comm_ratio: float
    #: Synchronization time not hidden behind compute.
    exposed_sync_time: float
    #: Seconds the GPU comm stream spent on compression kernels.
    compression_time: float
    #: Per-GPU utilization series (Fig. 9), 10 ms bins.
    gpu_util_series: Tuple[float, ...] = ()
    coordinator_batches: int = 0
    #: Peak simultaneous communication-buffer bytes on the busiest node
    #: (§5's memory-frugality claim, from repro.casync.memory).
    peak_comm_buffer_bytes: float = 0.0

    @property
    def total_gpus(self) -> int:
        return self.num_nodes * self.gpus_per_node

    @property
    def throughput(self) -> float:
        """Samples (or tokens) per second across the cluster."""
        return self.total_gpus * self.batch_size / self.iteration_time

    @property
    def scaling_efficiency(self) -> float:
        """actual / (N x single-GPU), as defined in the paper's §2.3."""
        single = self.batch_size / self.compute_time
        return (self.throughput / (self.total_gpus * single))


def make_plans(model: ModelSpec, cluster: ClusterSpec,
               algorithm: CompressionAlgorithm,
               strategy_kind: str) -> Dict[str, GradientPlan]:
    """Run the §3.3 planner over every gradient of ``model``."""
    cost_model = CostModel(cluster, algorithm, strategy=strategy_kind)
    planner = SelectivePlanner(cost_model)
    return planner.plan_model(model.gradients)


def simulate_iteration(model: ModelSpec, cluster: ClusterSpec,
                       strategy: Strategy,
                       algorithm: Optional[CompressionAlgorithm] = None,
                       plans: Optional[Dict[str, GradientPlan]] = None,
                       use_coordinator: bool = False,
                       batch_compression: bool = False,
                       local_aggregation: bool = True,
                       util_bin_s: float = 0.010,
                       straggler: Optional[Tuple[int, float]] = None
                       ) -> IterationResult:
    """Simulate one BSP iteration and return its metrics.

    ``straggler=(node, factor)`` slows that node's compute by ``factor``
    (>1): BSP's synchronization barrier means one slow node stalls the
    whole cluster (§2.1), which this knob lets experiments quantify.
    """
    if straggler is not None:
        node_idx, factor = straggler
        if not 0 <= node_idx < cluster.num_nodes:
            raise ValueError(f"straggler node {node_idx} out of range")
        if factor < 1.0:
            raise ValueError(f"straggler factor must be >= 1, got {factor}")
    env = Environment()
    fabric = Fabric(env, cluster.num_nodes, cluster.network)
    gpus = [Gpu(env, cluster.node.gpu, index=i)
            for i in range(cluster.num_nodes)]
    coordinator = Coordinator(env, fabric) if use_coordinator else None
    engines = [NodeEngine(env, i, gpus[i], fabric, coordinator=coordinator,
                          batch_compression=batch_compression)
               for i in range(cluster.num_nodes)]

    ready = {(node, grad.name): env.event()
             for node in range(cluster.num_nodes)
             for grad in model.gradients}

    ctx = SyncContext(env=env, cluster=cluster, fabric=fabric, gpus=gpus,
                      engines=engines, ready=ready, algorithm=algorithm,
                      plans=plans, coordinator=coordinator)
    graph = strategy.build(ctx, model)

    gpu_spec = cluster.node.gpu
    forward = model.forward_time(gpu_spec)
    schedule = list(model.backward_schedule(gpu_spec))
    compute_time = model.iteration_time(gpu_spec) * (1 + OPTIMIZER_FRACTION)

    def node_process(node: int):
        gpu = gpus[node]
        slowdown = 1.0
        if straggler is not None and node == straggler[0]:
            slowdown = straggler[1]
        yield from gpu.run_compute(forward * slowdown, category="compute")
        prev_offset = 0.0
        for offset, grad in schedule:
            yield from gpu.run_compute((offset - prev_offset) * slowdown,
                                       category="compute")
            prev_offset = offset
            event = ready[(node, grad.name)]
            if local_aggregation:
                delay = cluster.node.local_aggregation_time(grad.nbytes)
                _fire_later(env, event, delay)
            else:
                event.succeed()

    def _fire_later(env, event, delay):
        if delay <= 0:
            event.succeed()
            return

        def waiter():
            yield env.timeout(delay)
            event.succeed()

        env.process(waiter(), name="local-agg")

    node_procs = [env.process(node_process(i), name=f"node{i}")
                  for i in range(cluster.num_nodes)]

    finish = run_graph(env, graph, engines)

    def drain():
        yield env.all_of(node_procs)

    env.run_until_complete(env.process(drain(), name="drain"))
    iteration_time = max(finish, env.now) + compute_time * OPTIMIZER_FRACTION

    comm_busy = sum(nic.up_busy for nic in fabric.nics)
    comm_ratio = (comm_busy / cluster.num_nodes) / iteration_time
    compression_time = (sum(g.log.busy_time("compression") for g in gpus)
                        / cluster.num_nodes)
    exposed = max(0.0, iteration_time - compute_time)
    util = tuple(gpus[0].log.utilization_series(
        bin_width=util_bin_s, horizon=iteration_time, category="compute"))
    peaks = peak_buffer_memory(graph)
    peak_memory = max(peaks.values()) if peaks else 0.0

    return IterationResult(
        model=model.name,
        strategy=strategy.name,
        num_nodes=cluster.num_nodes,
        gpus_per_node=cluster.node.gpus_per_node,
        iteration_time=iteration_time,
        compute_time=compute_time,
        batch_size=model.batch_size,
        comm_ratio=min(1.0, comm_ratio),
        exposed_sync_time=exposed,
        compression_time=compression_time,
        gpu_util_series=util,
        coordinator_batches=coordinator.batches_flushed if coordinator else 0,
        peak_comm_buffer_bytes=peak_memory,
    )


def scaling_efficiency(result: IterationResult) -> float:
    return result.scaling_efficiency
