"""End-to-end training-iteration simulation.

Combines the pieces -- model backward schedule, GPU compute, local (intra-
node) aggregation, a synchronization strategy's task graph, and the network
fabric -- into one simulated BSP iteration, and reports the metrics every
experiment consumes: iteration time, throughput, scaling efficiency,
communication ratio, and GPU-utilization timelines.

One steady-state iteration is simulated: forward, then backward producing
gradients layer by layer (each becoming eligible for synchronization after
intra-node aggregation), with synchronization overlapping backward exactly
as far as the strategy's task dependencies allow.  The iteration ends when
every node holds every aggregated gradient (BSP barrier) and the optimizer
step has been applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..algorithms.base import CompressionAlgorithm
from ..casync.passes import DEFAULT_PASS_CONFIG, PassConfig
from ..casync.planner import CostModel, GradientPlan, SelectivePlanner
from ..casync.memory import peak_buffer_memory
from ..casync.tasks import Coordinator, NodeEngine, TaskGraph, run_graph
from ..cluster import ClusterSpec
from ..faults import (
    FaultInjector,
    FaultSchedule,
    Membership,
    NodeRestart,
    RetryPolicy,
    RobustSyncReport,
    run_graph_robust,
)
from ..gpu import Gpu
from ..models import ModelSpec
from ..net import Fabric
from ..sim import Environment, Interrupt
from ..strategies.base import Strategy, SyncContext
from ..telemetry import TelemetryCollector, current_collector

__all__ = ["IterationResult", "simulate_iteration", "scaling_efficiency"]

#: Optimizer (SGD update) cost as a fraction of compute time.
OPTIMIZER_FRACTION = 0.02


@dataclass(frozen=True)
class IterationResult:
    """Metrics from one simulated training iteration."""

    model: str
    strategy: str
    num_nodes: int
    gpus_per_node: int
    iteration_time: float
    compute_time: float
    batch_size: int

    #: Mean NIC busy fraction over the iteration (Table 1 "communication
    #: ratio": total communication activity share of training time).
    comm_ratio: float
    #: Synchronization time not hidden behind compute.
    exposed_sync_time: float
    #: Seconds the GPU comm stream spent on compression kernels.
    compression_time: float
    #: Per-GPU utilization series (Fig. 9), 10 ms bins.
    gpu_util_series: Tuple[float, ...] = ()
    coordinator_batches: int = 0
    #: Peak simultaneous communication-buffer bytes on the busiest node
    #: (§5's memory-frugality claim, from repro.casync.memory).
    peak_comm_buffer_bytes: float = 0.0
    #: Robust-execution report when the iteration ran under fault
    #: injection (None on the pristine path).
    fault_report: Optional[RobustSyncReport] = None
    #: Achieved per-link goodput (bytes actually sent / NIC busy time),
    #: the bandwidth signal the adaptive control plane's
    #: bandwidth_adaptive policy feeds on.  0.0 when nothing moved.
    measured_link_bandwidth: float = 0.0

    @property
    def total_gpus(self) -> int:
        return self.num_nodes * self.gpus_per_node

    @property
    def throughput(self) -> float:
        """Samples (or tokens) per second across the cluster."""
        return self.total_gpus * self.batch_size / self.iteration_time

    @property
    def scaling_efficiency(self) -> float:
        """actual / (N x single-GPU), as defined in the paper's §2.3."""
        single = self.batch_size / self.compute_time
        return (self.throughput / (self.total_gpus * single))


def make_plans(model: ModelSpec, cluster: ClusterSpec,
               algorithm: CompressionAlgorithm,
               strategy_kind: str) -> Dict[str, GradientPlan]:
    """Run the §3.3 planner over every gradient of ``model``."""
    cost_model = CostModel(cluster, algorithm, strategy=strategy_kind)
    planner = SelectivePlanner(cost_model)
    return planner.plan_model(model.gradients)


def simulate_iteration(model: ModelSpec, cluster: ClusterSpec,
                       strategy: Strategy,
                       algorithm: Optional[CompressionAlgorithm] = None,
                       plans: Optional[Dict[str, GradientPlan]] = None,
                       use_coordinator: bool = False,
                       batch_compression: bool = False,
                       local_aggregation: bool = True,
                       util_bin_s: float = 0.010,
                       straggler: Optional[Tuple[int, float]] = None,
                       fault_schedule: Optional[FaultSchedule] = None,
                       retry_policy: Optional[RetryPolicy] = None,
                       degradation: bool = True,
                       sync_deadline_s: Optional[float] = None,
                       heartbeat_timeout_s: float = 0.02,
                       telemetry: Optional[TelemetryCollector] = None,
                       pass_config: Optional[PassConfig] = None,
                       decisions=None) -> IterationResult:
    """Simulate one BSP iteration and return its metrics.

    ``pass_config`` overrides the SyncPlan pass pipeline's tuning
    constants (bulk eligibility, fallback partition size, and the
    coordinator's batching policy) -- see
    :class:`~repro.casync.passes.PassConfig`; None uses the defaults.

    ``decisions`` threads one iteration's adaptive per-gradient
    :class:`~repro.casync.decisions.DecisionMap` into the pass pipeline
    (the strategy must carry :class:`~repro.casync.passes.AdaptivePass`,
    e.g. ``get_strategy("casync-ps", adaptive=True)``); decisions are
    content-keyed into the graph cache, so changed decisions rebuild the
    plan and identical ones replay warm.

    ``straggler=(node, factor)`` slows that node's compute by ``factor``
    (>1): BSP's synchronization barrier means one slow node stalls the
    whole cluster (§2.1), which this knob lets experiments quantify.

    Fault injection: a non-empty ``fault_schedule`` (or one attached via
    ``cluster.faults``) runs the iteration under the robustness machinery
    -- retry/timeout sends (``retry_policy``, defaulting to
    :class:`RetryPolicy()`), graceful degradation over the surviving
    workers (``degradation``), and an optional round deadline
    (``sync_deadline_s``) after which a typed
    :class:`~repro.faults.errors.SyncAborted` is raised.  The report lands
    in :attr:`IterationResult.fault_report`.  An empty (or absent)
    schedule with no explicit ``retry_policy`` keeps the simulation on
    the pristine code path, bit-identical to a build without the fault
    subsystem.

    Telemetry: pass a :class:`~repro.telemetry.TelemetryCollector` (or
    attach one ambiently via :func:`repro.telemetry.attach`) to record
    spans for every transfer, kernel, task, and per-layer backward
    segment, plus counters/gauges/histograms.  Recording only observes --
    it never creates simulation events -- so results and trace hashes are
    identical with and without a collector, and with none attached the
    instrumentation is a single pointer test per site.
    """
    if straggler is not None:
        node_idx, factor = straggler
        if not 0 <= node_idx < cluster.num_nodes:
            raise ValueError(f"straggler node {node_idx} out of range")
        if factor < 1.0:
            raise ValueError(f"straggler factor must be >= 1, got {factor}")
    schedule = fault_schedule if fault_schedule is not None else cluster.faults
    faulty = schedule is not None and len(schedule) > 0
    robust = faulty or retry_policy is not None
    policy = retry_policy if retry_policy is not None else (
        RetryPolicy() if faulty else None)
    membership = Membership(cluster.num_nodes) if robust else None

    tel = telemetry if telemetry is not None else current_collector()
    env = Environment()
    env.telemetry = tel
    if tel is not None:
        tel.start_run(f"{model.name}/{strategy.name}/{cluster.num_nodes}n")
    fabric = Fabric(env, cluster.num_nodes, cluster.network)
    gpus = [Gpu(env, cluster.node_at(i).gpu, index=i)
            for i in range(cluster.num_nodes)]
    pconf = pass_config if pass_config is not None else DEFAULT_PASS_CONFIG
    coordinator = (Coordinator(env, fabric,
                               size_threshold=pconf.coordinator_batch_bytes,
                               timeout_s=pconf.coordinator_timeout_s,
                               retry_policy=policy, membership=membership)
                   if use_coordinator else None)
    engines = [NodeEngine(env, i, gpus[i], fabric, coordinator=coordinator,
                          batch_compression=batch_compression,
                          retry_policy=policy, membership=membership,
                          degradation=degradation)
               for i in range(cluster.num_nodes)]
    injector = (FaultInjector(env, schedule, fabric=fabric, gpus=gpus,
                              engines=engines)
                if faulty else None)

    ready = {(node, grad.name): env.event()
             for node in range(cluster.num_nodes)
             for grad in model.gradients}

    ctx = SyncContext(env=env, cluster=cluster, fabric=fabric, gpus=gpus,
                      engines=engines, ready=ready, algorithm=algorithm,
                      plans=plans, coordinator=coordinator,
                      pass_config=pconf, decisions=decisions)
    graph = strategy.build(ctx, model)

    # Per-GPU-model timing, computed once per distinct model (one entry on
    # a homogeneous cluster).  Under BSP the iteration is paced by the
    # slowest node's compute, hence the max below.
    timings = {}
    for node_spec in cluster.distinct_nodes():
        if node_spec.gpu not in timings:
            timings[node_spec.gpu] = (
                model.forward_time(node_spec.gpu),
                list(model.backward_schedule(node_spec.gpu)),
                model.iteration_time(node_spec.gpu)
                * (1 + OPTIMIZER_FRACTION))
    compute_time = max(t[2] for t in timings.values())

    def compute_pass(node: int, slowdown: float):
        gpu = gpus[node]
        forward, backward, _ = timings[cluster.node_at(node).gpu]
        layers = f"node{node}/layers"
        span = (tel.begin("forward", category="phase", track=layers,
                          at=env.now) if tel is not None else None)
        yield from gpu.run_compute(forward * slowdown, category="compute",
                                   span_parent=span)
        if span is not None:
            tel.finish(span, env.now)
        prev_offset = 0.0
        for offset, grad in backward:
            span = (tel.begin(f"backward:{grad.name}", category="phase",
                              track=layers, at=env.now, nbytes=grad.nbytes)
                    if tel is not None else None)
            yield from gpu.run_compute((offset - prev_offset) * slowdown,
                                       category="compute", span_parent=span)
            if span is not None:
                tel.finish(span, env.now)
            prev_offset = offset
            event = ready[(node, grad.name)]
            if event.triggered:
                continue  # already produced before a crash
            if local_aggregation:
                delay = cluster.node_at(node).local_aggregation_time(
                    grad.nbytes)
                _fire_later(env, event, delay)
            else:
                event.succeed()

    def node_process(node: int):
        slowdown = 1.0
        if straggler is not None and node == straggler[0]:
            slowdown = straggler[1]
        recover_delay = 0.0
        while True:
            try:
                if recover_delay > 0:
                    yield env.timeout(recover_delay)
                yield from compute_pass(node, slowdown)
                return
            except Interrupt:
                # Crashed fail-stop.  If the schedule restarts this node
                # later, it recovers then and redoes the iteration's
                # compute from scratch (GPU state was lost); otherwise its
                # remaining gradients are gone and the survivors' failure
                # detector / degradation machinery takes over.
                restarts = [] if schedule is None else [
                    ev.at for ev in schedule
                    if isinstance(ev, NodeRestart) and ev.node == node
                    and ev.at >= env.now]
                if not restarts:
                    return
                recover_delay = min(restarts) - env.now

    def _fire_later(env, event, delay):
        if delay <= 0:
            event.succeed()
            return

        def waiter():
            yield env.timeout(delay)
            if not event.triggered:  # a pre-crash waiter may have beaten us
                event.succeed()

        env.process(waiter(), name="local-agg")

    node_procs = [env.process(node_process(i), name=f"node{i}")
                  for i in range(cluster.num_nodes)]

    report: Optional[RobustSyncReport] = None
    if robust:
        if injector is not None:
            for i, proc in enumerate(node_procs):
                injector.bind_node_process(i, proc)
        node_events = {n: [ready[(n, grad.name)] for grad in model.gradients]
                       for n in range(cluster.num_nodes)}
        report = run_graph_robust(
            env, graph, engines, membership, injector=injector,
            deadline_s=sync_deadline_s, degradation=degradation,
            heartbeat_timeout_s=heartbeat_timeout_s,
            node_events=node_events)
        finish = report.finish_time

        def drain():
            # Crashed nodes' processes fail with Interrupt; tolerate them.
            for proc in node_procs:
                if proc.is_alive:
                    try:
                        yield proc
                    except Interrupt:
                        pass
    else:
        finish = run_graph(env, graph, engines)

        def drain():
            yield env.all_of(node_procs)

    env.run_until_complete(env.process(drain(), name="drain"))
    iteration_time = max(finish, env.now) + compute_time * OPTIMIZER_FRACTION
    if robust:
        # Let background retries/backoffs/timers play out so the transfer
        # ledger settles (byte conservation is checked over a quiescent
        # trace).  The clock this runs up is deliberately NOT part of the
        # iteration time, which was captured above.
        env.run()
        if report is not None:
            report.declared_dead = membership.dead()
            report.retries = sum(e.retries for e in engines)

    comm_busy = sum(nic.up_busy for nic in fabric.nics)
    comm_ratio = (comm_busy / cluster.num_nodes) / iteration_time
    measured_bw = (fabric.stats.bytes_sent / comm_busy
                   if comm_busy > 0 else 0.0)
    compression_time = (sum(g.log.busy_time("compression") for g in gpus)
                        / cluster.num_nodes)
    exposed = max(0.0, iteration_time - compute_time)
    util = tuple(gpus[0].log.utilization_series(
        bin_width=util_bin_s, horizon=iteration_time, category="compute"))
    peaks = peak_buffer_memory(graph)
    peak_memory = max(peaks.values()) if peaks else 0.0

    if tel is not None:
        iter_span = tel.begin(
            f"iteration:{model.name}", category="iteration",
            track="sim/iteration", at=0.0, strategy=strategy.name,
            num_nodes=cluster.num_nodes)
        tel.finish(iter_span, iteration_time)
        labels = {"model": model.name, "strategy": strategy.name}
        tel.metrics.counter("training.iterations").inc()
        tel.metrics.gauge("training.iteration_time_s", **labels).set(
            iteration_time)
        tel.metrics.gauge("training.compute_time_s", **labels).set(
            compute_time)
        tel.metrics.gauge("training.comm_ratio", **labels).set(
            min(1.0, comm_ratio))
        tel.metrics.gauge("training.exposed_sync_s", **labels).set(exposed)
        tel.metrics.gauge("training.compression_s", **labels).set(
            compression_time)

    return IterationResult(
        model=model.name,
        strategy=strategy.name,
        num_nodes=cluster.num_nodes,
        gpus_per_node=cluster.node.gpus_per_node,
        iteration_time=iteration_time,
        compute_time=compute_time,
        batch_size=model.batch_size,
        comm_ratio=min(1.0, comm_ratio),
        exposed_sync_time=exposed,
        compression_time=compression_time,
        gpu_util_series=util,
        coordinator_batches=coordinator.batches_flushed if coordinator else 0,
        peak_comm_buffer_bytes=peak_memory,
        fault_report=report,
        measured_link_bandwidth=measured_bw,
    )


def scaling_efficiency(result: IterationResult) -> float:
    return result.scaling_efficiency
