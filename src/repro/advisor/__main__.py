"""CLI: end-to-end utility verdicts from cached sweep results.

Usage::

    python -m repro.advisor recommend --cluster wan-1
    python -m repro.advisor recommend --source elastic --cluster wan-light
    python -m repro.advisor recommend --cache-dir results/.cache \\
        --require-cached --json advisor.json
    python -m repro.advisor scenarios [--source elastic] [--quick]

``recommend`` rebuilds the named scenario's job manifest and runs it
through the experiment runner against ``--cache-dir``.  With a cache
warmed by an earlier sweep (``python -m repro.experiments heterogeneous
--cache-dir DIR``) every verdict is served from disk; ``--require-cached``
makes that a hard contract -- the command fails if any job had to
execute, so CI can prove the advisor recomputes nothing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..errors import ConfigError
from ..experiments.runner import ExperimentRunner, ResultCache
from . import TARGET_ITERATIONS, _scenario_keys, recommend


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--source", default="heterogeneous",
                        choices=("heterogeneous", "elastic"),
                        help="which artifact's scenarios to judge")
    parser.add_argument("--quick", action="store_true",
                        help="match the sweep's --quick parameterization "
                             "(digests must match the cached run)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.advisor",
        description="Rank compression policies by end-to-end "
                    "time-to-target utility.")
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("recommend",
                         help="judge one scenario's policy space")
    _add_common(rec)
    rec.add_argument("--model", default="vgg19")
    rec.add_argument("--cluster", default="baseline",
                     help="scenario key (see the `scenarios` subcommand)")
    rec.add_argument("--cache-dir", metavar="DIR",
                     help="result cache from an earlier sweep; without "
                          "it every job executes in-process")
    rec.add_argument("--require-cached", action="store_true",
                     help="fail unless every verdict was served from "
                          "the cache (zero jobs executed)")
    rec.add_argument("--target-iterations", type=int,
                     default=TARGET_ITERATIONS, metavar="N",
                     help="iterations the uncompressed run needs to "
                          "reach the target")
    rec.add_argument("--json", metavar="FILE",
                     help="also write the recommendation as JSON "
                          "('-' for stdout)")

    lst = sub.add_parser("scenarios",
                         help="list the scenario keys --cluster accepts")
    _add_common(lst)

    args = parser.parse_args(argv)

    if args.command == "scenarios":
        from ..experiments.runner import artifact_plans
        kwargs = {k: v for k, v in dict(
            artifact_plans(quick=args.quick)[args.source].kwargs).items()
            if k != "model"}
        print("\n".join(_scenario_keys(args.source, kwargs)))
        return 0

    cache = ResultCache(Path(args.cache_dir)) if args.cache_dir else None
    runner = ExperimentRunner(cache=cache)
    try:
        rec_result = recommend(
            model=args.model, cluster=args.cluster, source=args.source,
            runner=runner, quick=args.quick,
            target_iterations=args.target_iterations)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(rec_result.render())
    if args.json:
        text = json.dumps(rec_result.to_json_obj(), indent=2,
                          sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            Path(args.json).write_text(text + "\n")
            print(f"[json -> {args.json}]")

    if args.require_cached and rec_result.executed:
        print(f"error: --require-cached, but {rec_result.executed} job(s) "
              f"executed instead of being served from the cache "
              f"(wrong --cache-dir, mismatched --quick/--model, or the "
              f"sweep never ran)", file=sys.stderr)
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
