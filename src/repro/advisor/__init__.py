"""End-to-end utility advisor: when does compression actually help?

Throughput is the wrong yardstick.  "On the Utility of Gradient
Compression in Distributed Training Systems" shows compressed training
often *loses* end to end even when per-iteration time improves, and
"Beyond Throughput and Compression Ratios" (both PAPERS.md) argues for
judging **time-to-target**: lossy gradients degrade statistical
efficiency, so a compressed run needs *more* iterations to reach the
same accuracy, and the extra iterations can eat the per-iteration win.

This package turns the repo's sweep data into exactly that verdict:

* :func:`recommend` rebuilds the job manifest of an artifact scenario
  (``heterogeneous`` regimes or ``elastic`` churn profiles), runs it
  through the PR-5 :class:`~repro.experiments.runner.ExperimentRunner`
  against a :class:`~repro.experiments.runner.ResultCache` -- a warm
  cache answers every job **without re-executing anything** (the
  returned :class:`Recommendation` carries the runner's
  ``executed`` / ``cache_hits`` counters as proof) -- and ranks the
  policy space by end-to-end utility;
* ``python -m repro.advisor`` is the CLI over the same call.

The statistical-efficiency model is deliberately simple and fully
deterministic: each algorithm carries an *iteration inflation* factor
(how many extra iterations the lossy gradient costs, drawn from the
convergence tables of the utility papers), and

    time_to_target = cost_per_iteration x target_iterations x inflation
    utility        = time_to_target(uncompressed) / time_to_target(candidate)

``utility > 1`` means compression pays off end to end.  The interesting
regime -- and the advisor's reason to exist -- is ``throughput_speedup >
1`` with ``utility < 1``: faster iterations, slower training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..experiments import elastic as elastic_artifact
from ..experiments import heterogeneous as heterogeneous_artifact
from ..experiments.common import JobSpec
from ..experiments.runner import (ExperimentRunner, ResultCache,
                                  artifact_plans, job_digest)

__all__ = [
    "CandidateVerdict",
    "ITERATION_INFLATION",
    "Recommendation",
    "recommend",
]

#: Iterations-to-target multiplier per compression algorithm: the
#: statistical-efficiency cost of training on lossy gradients, relative
#: to uncompressed SGD (1.0).  Deterministic by construction -- a fixed
#: table, not a fit -- with a conservative default for codecs the
#: utility literature doesn't cover.
ITERATION_INFLATION: Dict[Optional[str], float] = {
    None: 1.00,
    "onebit": 1.12,       # 1-bit quantization w/ error feedback
    "terngrad": 1.15,     # ternary levels, no error feedback
    "dgc": 1.08,          # deep gradient compression, 0.1% sparsity
    "tbq": 1.12,          # threshold binary quantization
    "mgwfbp": 1.02,       # merged-gradient scheduling, lossless-ish
    "adacomp": 1.10,      # adaptive residual compression
    "powersgd": 1.20,     # low-rank approximation
}

#: Fallback inflation for unknown codecs (pessimistic on purpose: an
#: unstudied codec should have to win clearly).
DEFAULT_INFLATION = 1.25

#: Iterations a training run needs to converge uncompressed.  Only the
#: *ratios* matter for the verdict; the absolute count just makes
#: ``time_to_target_s`` a human-readable number (90 epochs' worth of
#: ImageNet minibatches, order-of-magnitude).
TARGET_ITERATIONS = 100_000


def iteration_inflation(algorithm: Optional[str]) -> float:
    """The statistical-efficiency multiplier for ``algorithm``."""
    return ITERATION_INFLATION.get(algorithm, DEFAULT_INFLATION)


@dataclass(frozen=True)
class CandidateVerdict:
    """One (system, algorithm) policy's end-to-end judgement."""

    system: str
    algorithm: Optional[str]
    #: Seconds of wall clock per unit of training progress (one
    #: iteration for static scenarios; one uncompressed-equivalent
    #: iteration of committed samples for elastic ones).
    cost_per_unit_s: float
    #: Statistical-efficiency multiplier applied to the iteration count.
    inflation: float
    #: cost_per_unit x target_iterations x inflation.
    time_to_target_s: float
    #: time_to_target(baseline) / time_to_target(this candidate).
    utility: float
    #: Plain per-iteration speedup vs the baseline (the throughput-only
    #: verdict the artifact tables report).
    throughput_speedup: float
    #: The end-to-end verdict (utility > 1).
    wins: bool
    #: The throughput-only verdict (speedup > 1).
    throughput_wins: bool
    #: Provenance: the result-cache digest of the job this verdict was
    #: computed from, plus its job id and how it was satisfied.
    job_id: str
    digest: str
    served_from: str          # "cache" | "executed"

    def to_json_obj(self) -> Dict[str, Any]:
        return {
            "system": self.system, "algorithm": self.algorithm,
            "cost_per_unit_s": self.cost_per_unit_s,
            "inflation": self.inflation,
            "time_to_target_s": self.time_to_target_s,
            "utility": self.utility,
            "throughput_speedup": self.throughput_speedup,
            "wins": self.wins, "throughput_wins": self.throughput_wins,
            "job_id": self.job_id, "digest": self.digest,
            "served_from": self.served_from,
        }


@dataclass(frozen=True)
class Recommendation:
    """Ranked policy verdicts for one (model, cluster scenario)."""

    model: str
    source: str               # "heterogeneous" | "elastic"
    cluster: str              # scenario key within the source
    target_iterations: int
    #: Ranked best-first by end-to-end utility.
    verdicts: Tuple[CandidateVerdict, ...]
    #: Runner counters: jobs actually executed vs served from cache.
    #: ``executed == 0`` is the zero-recomputation proof.
    executed: int
    cache_hits: int

    @property
    def best(self) -> CandidateVerdict:
        return self.verdicts[0]

    @property
    def compression_wins(self) -> bool:
        """Whether any compressed candidate beats the baseline end to
        end (the advisor-grade analogue of the artifact tables'
        ``compression_wins`` column)."""
        return any(v.wins for v in self.verdicts if v.algorithm is not None)

    def to_json_obj(self) -> Dict[str, Any]:
        return {
            "model": self.model, "source": self.source,
            "cluster": self.cluster,
            "target_iterations": self.target_iterations,
            "verdicts": [v.to_json_obj() for v in self.verdicts],
            "executed": self.executed, "cache_hits": self.cache_hits,
            "compression_wins": self.compression_wins,
        }

    def render(self) -> str:
        from ..experiments.common import format_table
        rows = []
        for v in self.verdicts:
            rows.append([
                v.system, v.algorithm or "-",
                f"{v.cost_per_unit_s * 1e3:.2f}",
                f"{v.throughput_speedup:.2f}x",
                f"{v.inflation:.2f}",
                f"{v.time_to_target_s / 3600:.2f}",
                f"{v.utility:.2f}",
                "win" if v.wins
                else "baseline" if v.algorithm is None and v.utility == 1.0
                else "loss",
                v.served_from,
            ])
        header = (f"End-to-end utility on {self.cluster!r} "
                  f"({self.source}, {self.model}, "
                  f"{self.target_iterations} iterations to target): "
                  f"executed={self.executed} cache_hits={self.cache_hits}")
        return header + "\n" + format_table(
            ["system", "algo", "iter (ms)", "speedup", "inflation",
             "time-to-target (h)", "utility", "verdict", "served"], rows)


def _scenario_keys(source: str, kwargs: Mapping[str, Any]) -> List[str]:
    if source == "heterogeneous":
        rows = heterogeneous_artifact.scenarios(
            num_nodes=kwargs.get("num_nodes", 16),
            severities=kwargs.get("severities", (2.0, 4.0, 8.0)),
            wan_up_gbps=kwargs.get("wan_up_gbps", (0.5, 1.0, 4.0)))
        return [row["key"] for row in rows]
    profiles = kwargs.get("profiles", elastic_artifact.PROFILES)
    churns = kwargs.get("churns", ("static", "light", "heavy"))
    return [f"{p}-{c}" for p in profiles for c in churns]


def _candidate_specs(source: str, cluster: str,
                     policy_space: Sequence[Tuple[str, Optional[str]]],
                     model: str, kwargs: Mapping[str, Any]
                     ) -> List[Tuple[Tuple[str, Optional[str]], JobSpec]]:
    """The exact manifest rows the artifact would run, one per candidate.

    Job ids and params must match the artifact's byte for byte so a
    cache populated by an earlier sweep answers the advisor's queries;
    a candidate outside the artifact's default pair gets an extended
    job id (it was never part of the sweep).
    """
    module = (heterogeneous_artifact if source == "heterogeneous"
              else elastic_artifact)

    def scenario_of(spec: JobSpec) -> str:
        # job ids are "<artifact>/<scenario>-<system>" and system names
        # themselves contain dashes, so strip the known system suffix.
        tail = spec.job_id.split("/", 1)[1]
        suffix = f"-{spec.params['system']}"
        return tail[:-len(suffix)] if tail.endswith(suffix) else tail

    manifest = {(s.params["system"], s.params["algorithm"]): s
                for s in module.jobs(model=model, **dict(kwargs))
                if scenario_of(s) == cluster}
    out: List[Tuple[Tuple[str, Optional[str]], JobSpec]] = []
    for system, algorithm in policy_space:
        spec = manifest.get((system, algorithm))
        if spec is None:
            template = next(iter(manifest.values()), None)
            if template is None:
                raise ConfigError(
                    "cluster", cluster, _scenario_keys(source, kwargs),
                    hint=f"no {source!r} scenario matches")
            params = dict(template.params)
            params["system"] = system
            params["algorithm"] = algorithm
            suffix = f"{system}" if algorithm is None \
                else f"{system}-{algorithm}"
            spec = JobSpec(
                artifact=template.artifact,
                job_id=f"{template.artifact}/{cluster}-{suffix}+advisor",
                module=template.module, params=params,
                algorithm=algorithm)
        out.append(((system, algorithm), spec))
    return out


def recommend(model: str = "vgg19", cluster: str = "baseline",
              policy_space: Optional[Sequence[Tuple[str, Optional[str]]]]
              = None, *,
              source: str = "heterogeneous",
              cache: Optional[ResultCache] = None,
              runner: Optional[ExperimentRunner] = None,
              artifact_kwargs: Optional[Mapping[str, Any]] = None,
              quick: bool = False,
              target_iterations: int = TARGET_ITERATIONS
              ) -> Recommendation:
    """Rank ``policy_space`` by end-to-end utility on one scenario.

    ``cluster`` names a scenario of ``source`` -- a ``heterogeneous``
    regime key (``baseline``, ``straggler-4``, ``wan-1``, ``mixed``, ...)
    or an ``elastic`` ``profile-churn`` key (``wan-light``, ...).
    ``policy_space`` is a sequence of (system, algorithm) pairs; the
    default is the artifact's own pair (uncompressed ``ring`` vs
    ``hipress-ring`` + dgc).  It must contain at least one uncompressed
    (``algorithm=None``) entry -- that is the time-to-target baseline.

    ``artifact_kwargs`` must match the sweep that populated the cache
    (``quick`` selects the registry's quick parameterization); matching
    kwargs make the advisor's job digests identical to the sweep's, so
    a warm :class:`ResultCache` serves every verdict with zero jobs
    executed.
    """
    if source not in ("heterogeneous", "elastic"):
        raise ConfigError("source", source, ["heterogeneous", "elastic"])
    module = (heterogeneous_artifact if source == "heterogeneous"
              else elastic_artifact)
    if artifact_kwargs is None:
        plan = artifact_plans(quick=quick)[source]
        artifact_kwargs = {k: v for k, v in dict(plan.kwargs).items()
                           if k != "model"}
    keys = _scenario_keys(source, artifact_kwargs)
    if cluster not in keys:
        raise ConfigError("cluster", cluster, keys,
                          hint=f"scenario keys come from the {source!r} "
                               f"artifact's parameterization")
    space = list(policy_space if policy_space is not None
                 else module.SYSTEMS_UNDER_TEST)
    if not any(algorithm is None for _, algorithm in space):
        raise ConfigError(
            "policy-space", space, ["an (system, None) entry"],
            hint="end-to-end utility is relative to an uncompressed "
                 "baseline; include one")
    runner = runner or ExperimentRunner(cache=cache)
    candidates = _candidate_specs(source, cluster, space, model,
                                  artifact_kwargs)
    report = runner.run([spec for _, spec in candidates])
    report.raise_on_failure()
    served = {o.job_id: ("cache" if o.status in ("cached", "resumed")
                         else "executed")
              for o in report.outcomes}

    def cost(payload: Mapping[str, Any]) -> float:
        if source == "heterogeneous":
            return float(payload["iteration_time"])
        # Elastic: committed-goodput cost. Normalize to "seconds per
        # uncompressed-equivalent iteration" via samples per epoch at
        # full roster; only ratios matter for the verdict.
        return (float(payload["total_time_s"])
                / max(float(payload["completed_epochs"]), 1.0))

    costs: Dict[Tuple[str, Optional[str]], float] = {}
    for (system, algorithm), spec in candidates:
        costs[(system, algorithm)] = cost(report.payloads[spec.job_id])
    base_pairs = [pair for pair in costs if pair[1] is None]
    base_cost = min(costs[pair] for pair in base_pairs)
    verdicts: List[CandidateVerdict] = []
    for (system, algorithm), spec in candidates:
        c = costs[(system, algorithm)]
        infl = iteration_inflation(algorithm)
        tt = c * target_iterations * infl
        base_tt = base_cost * target_iterations * 1.0
        verdicts.append(CandidateVerdict(
            system=system, algorithm=algorithm, cost_per_unit_s=c,
            inflation=infl, time_to_target_s=tt,
            utility=base_tt / tt,
            throughput_speedup=base_cost / c,
            wins=base_tt / tt > 1.0,
            throughput_wins=base_cost / c > 1.0,
            job_id=spec.job_id,
            digest=job_digest(spec, runner.pass_config),
            served_from=served.get(spec.job_id, "executed")))
    verdicts.sort(key=lambda v: (-v.utility, v.system, v.algorithm or ""))
    return Recommendation(
        model=model, source=source, cluster=cluster,
        target_iterations=target_iterations, verdicts=tuple(verdicts),
        executed=report.executed, cache_hits=report.cache_hits)
