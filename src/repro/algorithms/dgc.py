"""Deep Gradient Compression (Lin et al., 2018) -- top-k sparsification.

DGC transmits only the ``rate`` fraction (default 0.1 %, the paper's
setting) of gradient elements with the largest magnitude, as
(index, value) pairs.  The full DGC recipe also applies momentum correction
and local gradient clipping on the *training* side; those live in
:class:`repro.algorithms.feedback.DGCMomentum` so this codec stays pure.

Buffer layout: ``count:u4 | k:u4 | indices:u4[k] | values:f4[k]``.
"""

from __future__ import annotations

import numpy as np

from .base import CompressionAlgorithm, KernelProfile
from .packing import ByteReader, ByteWriter

__all__ = ["DGC"]


class DGC(CompressionAlgorithm):
    """Top-k magnitude sparsification at a fixed rate."""

    name = "dgc"
    category = "sparsification"
    # The GPU implementation estimates the k-th magnitude from a sample,
    # then compacts: sample pass + select pass + compact pass.
    profile = KernelProfile(encode_passes=3, decode_passes=1,
                            encode_kernels=4, decode_kernels=1)

    METADATA_BYTES = 8

    def __init__(self, rate: float = 0.001):
        if not 0 < rate <= 1:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        self.rate = float(rate)

    def top_k(self, num_elements: int) -> int:
        return max(1, int(num_elements * self.rate))

    def encode(self, gradient: np.ndarray) -> np.ndarray:
        grad = np.ascontiguousarray(gradient, dtype=np.float32).ravel()
        if grad.size == 0:
            raise ValueError("cannot compress an empty gradient")
        k = self.top_k(grad.size)
        if k >= grad.size:
            indices = np.arange(grad.size, dtype=np.uint32)
        else:
            indices = np.argpartition(np.abs(grad), grad.size - k)[-k:]
            indices = np.sort(indices).astype(np.uint32)
        values = grad[indices]
        return (ByteWriter()
                .scalar(grad.size, "u4")
                .scalar(indices.size, "u4")
                .array(indices)
                .array(values)
                .finish())

    def decode(self, compressed: np.ndarray) -> np.ndarray:
        reader = ByteReader(compressed)
        count = int(reader.scalar("u4"))
        k = int(reader.scalar("u4"))
        indices = reader.array(np.uint32, k)
        values = reader.array(np.float32, k)
        out = np.zeros(count, dtype=np.float32)
        out[indices] = values
        return out

    def compressed_nbytes(self, num_elements: int) -> int:
        if num_elements <= 0:
            raise ValueError(f"need positive element count, got {num_elements}")
        return self.METADATA_BYTES + 8 * self.top_k(num_elements)
