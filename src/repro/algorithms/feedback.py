"""Training-side compression state: error feedback and DGC momentum correction.

Compression codecs in this package are pure functions; the stateful parts
of the published algorithms -- carrying the quantization/sparsification
residual into the next iteration (1-bit SGD, TBQ, GradDrop, AdaComp) and
DGC's momentum correction -- live here, keyed by tensor name.  The
convergence experiments (Fig. 13) rely on these wrappers; the throughput
simulator does not (residual arithmetic is a constant-cost elementwise add
folded into the encode pass count).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .base import CompressionAlgorithm

__all__ = ["ErrorFeedback", "DGCMomentum"]


class ErrorFeedback:
    """Residual (error) feedback around any compression codec.

    For each named tensor, the quantization error ``g' - decode(encode(g'))``
    (where ``g' = g + residual``) is accumulated locally and re-injected the
    next time that tensor is compressed.  This is the standard trick that
    makes aggressive compression converge (Seide et al. 2014; Strom 2015).
    """

    def __init__(self, algorithm: CompressionAlgorithm):
        self.algorithm = algorithm
        self._residuals: Dict[str, np.ndarray] = {}

    def compress(self, name: str, gradient: np.ndarray) -> np.ndarray:
        """Compress ``gradient`` with residual correction; returns the buffer."""
        grad = np.ascontiguousarray(gradient, dtype=np.float32).ravel()
        residual = self._residuals.get(name)
        if residual is not None:
            if residual.size != grad.size:
                raise ValueError(
                    f"tensor {name!r} changed size: "
                    f"{residual.size} -> {grad.size}")
            grad = grad + residual
        encode_named = getattr(self.algorithm, "encode_named", None)
        if encode_named is not None:
            buffer = encode_named(name, grad)  # adaptive codecs track by name
        else:
            buffer = self.algorithm.encode(grad)
        self._residuals[name] = grad - self.algorithm.decode(buffer)
        return buffer

    def residual(self, name: str) -> Optional[np.ndarray]:
        return self._residuals.get(name)

    def reset(self) -> None:
        self._residuals.clear()


class DGCMomentum:
    """DGC's momentum correction + factor masking (Lin et al., 2018, §3).

    Plain error feedback under a momentum optimizer loses the momentum that
    the unsent coordinates would have accumulated.  DGC fixes this by
    accumulating *velocity* locally::

        u_t = m * u_{t-1} + g_t          (momentum accumulation)
        v_t = v_{t-1} + u_t              (velocity accumulation)
        send sparsify(v_t); clear u, v at sent coordinates

    Optionally clips the local gradient to bound staleness effects.
    """

    def __init__(self, algorithm: CompressionAlgorithm, momentum: float = 0.9,
                 clip_norm: Optional[float] = None):
        if not 0 <= momentum < 1:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.algorithm = algorithm
        self.momentum = float(momentum)
        self.clip_norm = clip_norm
        self._u: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}

    def compress(self, name: str, gradient: np.ndarray) -> np.ndarray:
        grad = np.ascontiguousarray(gradient, dtype=np.float32).ravel()
        if self.clip_norm is not None:
            norm = float(np.linalg.norm(grad))
            if norm > self.clip_norm:
                grad = grad * (self.clip_norm / norm)
        u = self._u.get(name)
        v = self._v.get(name)
        if u is None:
            u = np.zeros_like(grad)
            v = np.zeros_like(grad)
        u = self.momentum * u + grad
        v = v + u
        buffer = self.algorithm.encode(v)
        sent = self.algorithm.decode(buffer) != 0
        u[sent] = 0.0
        v[sent] = 0.0
        self._u[name] = u
        self._v[name] = v
        return buffer

    def reset(self) -> None:
        self._u.clear()
        self._v.clear()
