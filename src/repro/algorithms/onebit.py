"""1-bit SGD quantization (Seide et al., 2014) -- the paper's "onebit".

Every gradient element is reduced to its sign bit; two per-tensor scales
(the mean of the positive elements and the mean of the negative elements)
let decode reconstruct an unbiased-ish estimate.  A 1-bit representation
reduces transmitted volume by 96.9 % (paper §2.4): 1 bit + 12 bytes of
metadata versus 32 bits per element.

In the original algorithm the quantization error is fed back into the next
iteration's gradient; that residual state lives in
:class:`repro.algorithms.feedback.ErrorFeedback`, keeping this codec pure.
"""

from __future__ import annotations

import numpy as np

from .base import CompressionAlgorithm, KernelProfile
from .packing import ByteReader, ByteWriter

__all__ = ["OneBit"]


class OneBit(CompressionAlgorithm):
    """Sign quantization with per-sign mean scales.

    Buffer layout: ``count:u4 | scale_pos:f4 | scale_neg:f4 | signbits``.
    """

    name = "onebit"
    category = "quantization"
    # Encode: one fused reduction pass (positive/negative sums + counts) and
    # one pack pass.  Decode: a single scatter from bits.
    profile = KernelProfile(encode_passes=2, decode_passes=1,
                            encode_kernels=2, decode_kernels=1)

    METADATA_BYTES = 12

    def encode(self, gradient: np.ndarray) -> np.ndarray:
        grad = np.ascontiguousarray(gradient, dtype=np.float32).ravel()
        if grad.size == 0:
            raise ValueError("cannot compress an empty gradient")
        positive = grad >= 0
        npos = int(positive.sum())
        nneg = grad.size - npos
        scale_pos = float(grad[positive].sum() / npos) if npos else 0.0
        scale_neg = float(grad[~positive].sum() / nneg) if nneg else 0.0
        bits = np.packbits(positive)
        return (ByteWriter()
                .scalar(grad.size, "u4")
                .scalar(scale_pos, "f4")
                .scalar(scale_neg, "f4")
                .array(bits)
                .finish())

    def decode(self, compressed: np.ndarray) -> np.ndarray:
        reader = ByteReader(compressed)
        count = int(reader.scalar("u4"))
        scale_pos = float(reader.scalar("f4"))
        scale_neg = float(reader.scalar("f4"))
        bits = np.unpackbits(reader.rest())[:count].astype(bool)
        return np.where(bits, np.float32(scale_pos),
                        np.float32(scale_neg)).astype(np.float32)

    def compressed_nbytes(self, num_elements: int) -> int:
        if num_elements <= 0:
            raise ValueError(f"need positive element count, got {num_elements}")
        return self.METADATA_BYTES + (num_elements + 7) // 8
