"""Bit- and byte-packing helpers shared by all compression codecs.

The paper's CompLL packs sub-byte types (uint1/uint2/uint4) into consecutive
bits "with the minimal zero padding to ensure the total number of bits is a
multiple of 8" (§4.3).  These helpers implement exactly that contract on
NumPy arrays, plus a tiny sequential byte-stream writer/reader used to build
the self-describing compressed buffers (metadata + payload, mirroring the
DSL's ``concat``).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

__all__ = ["pack_uint", "unpack_uint", "ByteWriter", "ByteReader"]

_SCALAR_DTYPES = {
    "f4": np.float32,
    "u4": np.uint32,
    "u1": np.uint8,
    "i4": np.int32,
}


def pack_uint(values: np.ndarray, bitwidth: int) -> np.ndarray:
    """Pack non-negative integers < 2**bitwidth into a dense uint8 buffer.

    Values are laid out MSB-first, zero-padded to a whole number of bytes.
    """
    if not 1 <= bitwidth <= 16:
        raise ValueError(f"bitwidth must be in [1, 16], got {bitwidth}")
    values = np.ascontiguousarray(values)
    if values.size == 0:
        return np.empty(0, dtype=np.uint8)
    if np.any(values < 0) or np.any(values >= (1 << bitwidth)):
        raise ValueError(f"values do not fit in {bitwidth} bits")
    vals = values.astype(np.uint32).ravel()
    shifts = np.arange(bitwidth - 1, -1, -1, dtype=np.uint32)
    bits = ((vals[:, None] >> shifts) & 1).astype(np.uint8).ravel()
    return np.packbits(bits)


def unpack_uint(buffer: np.ndarray, bitwidth: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_uint`; returns ``count`` uint32 values."""
    if not 1 <= bitwidth <= 16:
        raise ValueError(f"bitwidth must be in [1, 16], got {bitwidth}")
    if count < 0:
        raise ValueError(f"negative count {count}")
    if count == 0:
        return np.empty(0, dtype=np.uint32)
    needed_bits = count * bitwidth
    buffer = np.ascontiguousarray(buffer, dtype=np.uint8)
    if buffer.size * 8 < needed_bits:
        raise ValueError(
            f"buffer has {buffer.size * 8} bits, need {needed_bits}")
    bits = np.unpackbits(buffer)[:needed_bits].astype(np.uint32)
    bits = bits.reshape(count, bitwidth)
    shifts = np.arange(bitwidth - 1, -1, -1, dtype=np.uint32)
    return (bits << shifts).sum(axis=1, dtype=np.uint32)


class ByteWriter:
    """Builds a flat uint8 buffer from scalars and arrays, in order."""

    def __init__(self):
        self._chunks = []

    def scalar(self, value, dtype: str) -> "ByteWriter":
        np_dtype = _SCALAR_DTYPES.get(dtype)
        if np_dtype is None:
            raise ValueError(f"unsupported scalar dtype {dtype!r}")
        self._chunks.append(np.asarray([value], dtype=np_dtype).view(np.uint8))
        return self

    def array(self, values: np.ndarray) -> "ByteWriter":
        arr = np.ascontiguousarray(values)
        self._chunks.append(arr.view(np.uint8).ravel())
        return self

    def finish(self) -> np.ndarray:
        if not self._chunks:
            return np.empty(0, dtype=np.uint8)
        return np.concatenate(self._chunks)


class ByteReader:
    """Sequentially decodes a buffer produced by :class:`ByteWriter`."""

    def __init__(self, buffer: np.ndarray):
        self._buf = np.ascontiguousarray(buffer, dtype=np.uint8)
        self._pos = 0

    @property
    def remaining(self) -> int:
        return self._buf.size - self._pos

    def scalar(self, dtype: str):
        np_dtype = _SCALAR_DTYPES.get(dtype)
        if np_dtype is None:
            raise ValueError(f"unsupported scalar dtype {dtype!r}")
        nbytes = np.dtype(np_dtype).itemsize
        raw = self._take(nbytes)
        return raw.copy().view(np_dtype)[0]

    def array(self, dtype: Union[str, np.dtype], count: int) -> np.ndarray:
        np_dtype = np.dtype(dtype)
        raw = self._take(np_dtype.itemsize * count)
        return raw.copy().view(np_dtype)

    def rest(self) -> np.ndarray:
        raw = self._buf[self._pos:]
        self._pos = self._buf.size
        return raw

    def _take(self, nbytes: int) -> np.ndarray:
        if self._pos + nbytes > self._buf.size:
            raise ValueError(
                f"buffer underrun: need {nbytes} bytes, have {self.remaining}")
        raw = self._buf[self._pos:self._pos + nbytes]
        self._pos += nbytes
        return raw
