"""Gradient Dropping (Aji & Heafield, 2017) -- the paper's "GradDrop".

Drops all but (approximately) the top ``keep_rate`` fraction of elements by
magnitude.  Unlike DGC's exact top-k, GradDrop estimates the magnitude
threshold from a subsample of the gradient (cheap on GPU) and keeps every
element above it, so the selected count is only approximately
``keep_rate * n`` -- which is faithful to the original algorithm.

Buffer layout is the sparse (index, value) layout shared with DGC.
"""

from __future__ import annotations

import numpy as np

from .base import CompressionAlgorithm, KernelProfile
from .packing import ByteReader, ByteWriter

__all__ = ["GradDrop"]


class GradDrop(CompressionAlgorithm):
    """Sampled-threshold magnitude dropping."""

    name = "graddrop"
    category = "sparsification"
    # Sample pass (strided, cheap) + select + compact.
    profile = KernelProfile(encode_passes=2.2, decode_passes=1,
                            encode_kernels=3, decode_kernels=1)

    METADATA_BYTES = 8
    #: Fraction of elements sampled to estimate the drop threshold.
    SAMPLE_RATE = 0.01
    #: Minimum sample size for a stable threshold estimate.
    MIN_SAMPLE = 256

    def __init__(self, keep_rate: float = 0.01):
        if not 0 < keep_rate <= 1:
            raise ValueError(f"keep_rate must be in (0, 1], got {keep_rate}")
        self.keep_rate = float(keep_rate)

    def _threshold(self, magnitudes: np.ndarray) -> float:
        """Estimate the (1 - keep_rate) magnitude quantile from a subsample."""
        n = magnitudes.size
        sample_size = max(self.MIN_SAMPLE, int(n * self.SAMPLE_RATE))
        if sample_size >= n:
            sample = magnitudes
        else:
            stride = n // sample_size
            sample = magnitudes[::stride]
        return float(np.quantile(sample, 1.0 - self.keep_rate))

    def encode(self, gradient: np.ndarray) -> np.ndarray:
        grad = np.ascontiguousarray(gradient, dtype=np.float32).ravel()
        if grad.size == 0:
            raise ValueError("cannot compress an empty gradient")
        magnitudes = np.abs(grad)
        threshold = self._threshold(magnitudes)
        selected = np.nonzero(magnitudes >= threshold)[0]
        if selected.size == 0:  # degenerate all-equal gradients
            selected = np.asarray([int(np.argmax(magnitudes))])
        indices = selected.astype(np.uint32)
        return (ByteWriter()
                .scalar(grad.size, "u4")
                .scalar(indices.size, "u4")
                .array(indices)
                .array(grad[selected])
                .finish())

    def decode(self, compressed: np.ndarray) -> np.ndarray:
        reader = ByteReader(compressed)
        count = int(reader.scalar("u4"))
        k = int(reader.scalar("u4"))
        indices = reader.array(np.uint32, k)
        values = reader.array(np.float32, k)
        out = np.zeros(count, dtype=np.float32)
        out[indices] = values
        return out

    def compressed_nbytes(self, num_elements: int) -> int:
        if num_elements <= 0:
            raise ValueError(f"need positive element count, got {num_elements}")
        k = max(1, int(num_elements * self.keep_rate))
        return self.METADATA_BYTES + 8 * k
