"""AdaComp (Chen et al., 2018) -- adaptive residual gradient compression.

One of the paper's §4.4 extensibility case studies ("AdaComp needs map,
reduce, filter, concat and extract").  AdaComp partitions the gradient into
fixed-size bins and, within each bin, selects elements whose magnitude is
within a factor of the bin's local maximum -- so the selection rate adapts
to the local gradient distribution rather than using a single global
threshold.

This reproduction implements the self-adjusting bin-local selection rule
(select ``|g_i| >= bin_max / 2``, i.e. elements that would cross the bin
max after one more accumulation step); the residual accumulation of the
full algorithm composes via
:class:`repro.algorithms.feedback.ErrorFeedback`.
"""

from __future__ import annotations

import numpy as np

from .base import CompressionAlgorithm, KernelProfile
from .packing import ByteReader, ByteWriter

__all__ = ["AdaComp"]


class AdaComp(CompressionAlgorithm):
    """Bin-local adaptive sparsification."""

    name = "adacomp"
    category = "sparsification"
    profile = KernelProfile(encode_passes=3, decode_passes=1,
                            encode_kernels=4, decode_kernels=1)

    METADATA_BYTES = 8

    def __init__(self, bin_size: int = 512, expected_density: float = 0.12):
        if bin_size < 1:
            raise ValueError(f"bin_size must be >= 1, got {bin_size}")
        if not 0 < expected_density <= 1:
            raise ValueError(
                f"expected_density must be in (0, 1], got {expected_density}")
        self.bin_size = int(bin_size)
        self.expected_density = float(expected_density)

    def encode(self, gradient: np.ndarray) -> np.ndarray:
        grad = np.ascontiguousarray(gradient, dtype=np.float32).ravel()
        if grad.size == 0:
            raise ValueError("cannot compress an empty gradient")
        magnitudes = np.abs(grad)
        n = grad.size
        nbins = (n + self.bin_size - 1) // self.bin_size
        padded = np.zeros(nbins * self.bin_size, dtype=np.float32)
        padded[:n] = magnitudes
        bin_max = padded.reshape(nbins, self.bin_size).max(axis=1)
        thresholds = np.repeat(bin_max / 2.0, self.bin_size)[:n]
        selected = np.nonzero(magnitudes >= np.maximum(thresholds, 1e-30))[0]
        if selected.size == 0:
            selected = np.asarray([int(np.argmax(magnitudes))])
        indices = selected.astype(np.uint32)
        return (ByteWriter()
                .scalar(n, "u4")
                .scalar(indices.size, "u4")
                .array(indices)
                .array(grad[selected])
                .finish())

    def decode(self, compressed: np.ndarray) -> np.ndarray:
        reader = ByteReader(compressed)
        count = int(reader.scalar("u4"))
        k = int(reader.scalar("u4"))
        indices = reader.array(np.uint32, k)
        values = reader.array(np.float32, k)
        out = np.zeros(count, dtype=np.float32)
        out[indices] = values
        return out

    def compressed_nbytes(self, num_elements: int) -> int:
        if num_elements <= 0:
            raise ValueError(f"need positive element count, got {num_elements}")
        k = max(1, int(num_elements * self.expected_density))
        return self.METADATA_BYTES + 8 * k
