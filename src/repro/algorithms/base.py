"""Compression-algorithm abstraction: the paper's unified encode/decode API.

CompLL's unified API (§4.1, Fig. 4) is::

    void encode(float* input, uint8* output, params);
    void decode(uint8* input, float* output, params);

Here that becomes :class:`CompressionAlgorithm`, whose ``encode`` turns a
float32 gradient into a self-describing uint8 buffer and whose ``decode``
inverts it.  Compressed gradients are deliberately *not* aggregatable --
aggregation must decode, merge, re-encode, which is the root of the
synchronization overhead CaSync manages (§2.5).

Each algorithm also carries a :class:`KernelProfile` -- how many scan passes
and kernel launches encode/decode need, and the expected compressed size --
which is all the information the selective-compression cost model (§3.3) and
the GPU simulator need.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Type

import numpy as np

from ..gpu import GpuSpec

__all__ = [
    "CompressionAlgorithm",
    "KernelProfile",
    "register_algorithm",
    "get_algorithm",
    "available_algorithms",
    "FLOAT_BYTES",
]

#: Gradients are fp32 throughout, matching the paper's evaluation.
FLOAT_BYTES = 4


@dataclass(frozen=True)
class KernelProfile:
    """Cost-model description of an algorithm's encode/decode kernels.

    encode_passes / decode_passes: effective number of times the input
        buffer is streamed through GPU memory (a fused multi-op scan over
        the same data counts once per actual pass).
    encode_kernels / decode_kernels: number of kernel launches.
    """

    encode_passes: float
    decode_passes: float
    encode_kernels: int = 1
    decode_kernels: int = 1

    def encode_time(self, nbytes: float, gpu: GpuSpec,
                    output_nbytes: Optional[float] = None) -> float:
        """Seconds to compress an ``nbytes`` gradient on ``gpu``."""
        touched = self.encode_passes * nbytes + (output_nbytes or 0.0)
        return gpu.kernel_time(touched, kernels=self.encode_kernels)

    def decode_time(self, compressed_nbytes: float, gpu: GpuSpec,
                    output_nbytes: float = 0.0) -> float:
        """Seconds to decompress on ``gpu``.

        Decode reads the compressed buffer and writes the full-size output,
        so the output traffic dominates for high-ratio codecs.
        """
        touched = self.decode_passes * compressed_nbytes + output_nbytes
        return gpu.kernel_time(touched, kernels=self.decode_kernels)


class CompressionAlgorithm(ABC):
    """Base class for gradient compression codecs.

    Subclasses implement :meth:`encode` / :meth:`decode` over 1-D float32
    arrays and report their expected compressed size for the cost model.
    N-D gradients are flattened by callers; compression is layer-wise
    (§3.3), so shape restoration is the caller's concern.
    """

    #: Short identifier, e.g. "onebit".
    name: str = "base"
    #: "quantization" or "sparsification".
    category: str = "quantization"
    #: Kernel cost profile for the simulator / cost model.
    profile: KernelProfile = KernelProfile(encode_passes=1, decode_passes=1)

    @abstractmethod
    def encode(self, gradient: np.ndarray) -> np.ndarray:
        """Compress a 1-D float32 gradient into a uint8 buffer."""

    @abstractmethod
    def decode(self, compressed: np.ndarray) -> np.ndarray:
        """Decompress a buffer produced by :meth:`encode` back to float32."""

    @abstractmethod
    def compressed_nbytes(self, num_elements: int) -> int:
        """Expected compressed size in bytes for an ``num_elements`` gradient.

        For data-dependent codecs (sparsifiers) this is the size at the
        algorithm's nominal selection rate; the simulator uses it as the
        planning estimate, exactly as the paper profiles ``r`` (§3.3).
        """

    # -- cost-model conveniences -------------------------------------------

    def compression_rate(self, num_elements: int) -> float:
        """``r`` from Table 2: compressed bytes / original bytes."""
        if num_elements <= 0:
            raise ValueError(f"need a positive element count, got {num_elements}")
        return self.compressed_nbytes(num_elements) / (num_elements * FLOAT_BYTES)

    def encode_time(self, nbytes: float, gpu: GpuSpec) -> float:
        """T_enc(m) for an m-byte gradient (§3.3, Table 2)."""
        out = self.compressed_nbytes(max(1, int(nbytes // FLOAT_BYTES)))
        return self.profile.encode_time(nbytes, gpu, output_nbytes=out)

    def decode_time(self, nbytes: float, gpu: GpuSpec) -> float:
        """T_dec for a compressed gradient whose *original* size is nbytes."""
        comp = self.compressed_nbytes(max(1, int(nbytes // FLOAT_BYTES)))
        return self.profile.decode_time(comp, gpu, output_nbytes=nbytes)

    # -- verification helper -----------------------------------------------

    def roundtrip(self, gradient: np.ndarray) -> np.ndarray:
        """decode(encode(g)) -- used pervasively by tests."""
        return self.decode(self.encode(np.asarray(gradient, dtype=np.float32)))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def _as_float32_1d(gradient: np.ndarray) -> np.ndarray:
    arr = np.ascontiguousarray(gradient, dtype=np.float32).ravel()
    if arr.size == 0:
        raise ValueError("cannot compress an empty gradient")
    return arr


# Registry ----------------------------------------------------------------

_REGISTRY: Dict[str, Callable[..., CompressionAlgorithm]] = {}


def register_algorithm(name: str, factory: Callable[..., CompressionAlgorithm],
                       overwrite: bool = False) -> None:
    """Register an algorithm factory under ``name``.

    CompLL's code generator calls this to auto-integrate generated codecs
    (§4: "automatically integrated into DNN systems with little human
    intervention").
    """
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"algorithm {name!r} is already registered")
    _REGISTRY[name] = factory


def get_algorithm(name: str, **params) -> CompressionAlgorithm:
    """Instantiate a registered algorithm by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**params)


def available_algorithms() -> list:
    return sorted(_REGISTRY)
