"""Compression-quality analysis (a GRACE-style comparison harness).

The paper positions itself against GRACE, which "studies the impacts of
gradient compression algorithms" without addressing the systems problem.
This module provides that study side as a library feature: given codecs
and gradient distributions, measure the *information* metrics that matter
to training -- compression ratio, reconstruction error, cosine alignment
of the update direction, preserved energy -- so practitioners can pick an
algorithm before handing it to CaSync for the *systems* side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence

import numpy as np

from .base import CompressionAlgorithm

__all__ = ["CompressionMetrics", "measure", "compare", "DISTRIBUTIONS"]


@dataclass(frozen=True)
class CompressionMetrics:
    """Quality metrics for one (algorithm, gradient distribution) pair."""

    algorithm: str
    distribution: str
    compression_ratio: float      # compressed bytes / original bytes
    normalized_mse: float         # ||g - g'||^2 / ||g||^2
    cosine_similarity: float      # <g, g'> / (||g|| ||g'||); 1 = aligned
    energy_preserved: float       # ||g'||^2 / ||g||^2

    @property
    def reduction(self) -> float:
        return 1.0 - self.compression_ratio


#: Synthetic gradient distributions seen in practice: dense Gaussian
#: (early conv layers), heavy-tailed (attention logits), sparse-ish
#: (embedding updates), and skewed (post-ReLU activations' gradients).
DISTRIBUTIONS: Dict[str, Callable[[np.random.Generator, int], np.ndarray]] = {
    "gaussian": lambda rng, n: rng.standard_normal(n) * 0.1,
    "heavy-tailed": lambda rng, n: rng.standard_t(df=3, size=n) * 0.05,
    "sparse": lambda rng, n: (rng.standard_normal(n) * 0.1
                              * (rng.random(n) < 0.05)),
    "skewed": lambda rng, n: np.abs(rng.standard_normal(n)) * 0.1 - 0.02,
}


def measure(algorithm: CompressionAlgorithm, gradient: np.ndarray,
            distribution: str = "custom") -> CompressionMetrics:
    """Measure one codec on one gradient."""
    grad = np.ascontiguousarray(gradient, dtype=np.float32).ravel()
    if grad.size == 0:
        raise ValueError("cannot analyze an empty gradient")
    buffer = algorithm.encode(grad)
    restored = algorithm.decode(buffer)
    g_norm_sq = float(np.dot(grad, grad))
    r_norm_sq = float(np.dot(restored, restored))
    if g_norm_sq == 0:
        raise ValueError("cannot analyze an all-zero gradient")
    error = restored - grad
    cosine = 0.0
    if r_norm_sq > 0:
        cosine = float(np.dot(grad, restored)
                       / np.sqrt(g_norm_sq * r_norm_sq))
    return CompressionMetrics(
        algorithm=algorithm.name,
        distribution=distribution,
        compression_ratio=buffer.nbytes / grad.nbytes,
        normalized_mse=float(np.dot(error, error)) / g_norm_sq,
        cosine_similarity=cosine,
        energy_preserved=r_norm_sq / g_norm_sq)


def compare(algorithms: Sequence[CompressionAlgorithm],
            distributions: Iterable[str] = ("gaussian", "heavy-tailed",
                                            "sparse"),
            size: int = 100_000, seed: int = 0) -> List[CompressionMetrics]:
    """Cross-product measurement over codecs and named distributions."""
    results = []
    for name in distributions:
        try:
            sampler = DISTRIBUTIONS[name]
        except KeyError:
            raise KeyError(
                f"unknown distribution {name!r}; "
                f"available: {sorted(DISTRIBUTIONS)}") from None
        rng = np.random.default_rng(seed)
        gradient = sampler(rng, size).astype(np.float32)
        for algorithm in algorithms:
            results.append(measure(algorithm, gradient, distribution=name))
    return results
