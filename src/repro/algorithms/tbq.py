"""Threshold Binary Quantization (Strom, 2015) -- the paper's "TBQ".

Elements whose magnitude exceeds a fixed threshold ``tau`` are transmitted
as (index, sign) pairs and reconstructed as ``+/- tau``; everything else is
dropped.  The quantization residual is meant to be carried to the next
iteration (see :class:`repro.algorithms.feedback.ErrorFeedback`).

Buffer layout: ``count:u4 | tau:f4 | nsel:u4 | indices:u4[nsel] | signbits``.

The compressed size is data-dependent; for planning, the codec reports the
size at its ``expected_density`` (fraction of elements above threshold),
mirroring how the paper profiles the compression rate ``r``.
"""

from __future__ import annotations

import numpy as np

from .base import CompressionAlgorithm, KernelProfile
from .packing import ByteReader, ByteWriter

__all__ = ["TBQ"]


class TBQ(CompressionAlgorithm):
    """Fixed-threshold ternarization transmitted sparsely."""

    name = "tbq"
    category = "quantization"
    # Encode: threshold scan + compaction.  Decode: sparse scatter.
    profile = KernelProfile(encode_passes=2, decode_passes=1,
                            encode_kernels=2, decode_kernels=1)

    METADATA_BYTES = 12

    def __init__(self, threshold: float = 0.01,
                 expected_density: float = 0.01):
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if not 0 < expected_density <= 1:
            raise ValueError(
                f"expected_density must be in (0, 1], got {expected_density}")
        self.threshold = float(threshold)
        self.expected_density = float(expected_density)

    def encode(self, gradient: np.ndarray) -> np.ndarray:
        grad = np.ascontiguousarray(gradient, dtype=np.float32).ravel()
        if grad.size == 0:
            raise ValueError("cannot compress an empty gradient")
        selected = np.nonzero(np.abs(grad) >= self.threshold)[0]
        signs = grad[selected] > 0
        return (ByteWriter()
                .scalar(grad.size, "u4")
                .scalar(self.threshold, "f4")
                .scalar(selected.size, "u4")
                .array(selected.astype(np.uint32))
                .array(np.packbits(signs))
                .finish())

    def decode(self, compressed: np.ndarray) -> np.ndarray:
        reader = ByteReader(compressed)
        count = int(reader.scalar("u4"))
        tau = float(reader.scalar("f4"))
        nsel = int(reader.scalar("u4"))
        indices = reader.array(np.uint32, nsel)
        signs = np.unpackbits(reader.rest())[:nsel].astype(bool)
        out = np.zeros(count, dtype=np.float32)
        out[indices] = np.where(signs, np.float32(tau), np.float32(-tau))
        return out

    def compressed_nbytes(self, num_elements: int) -> int:
        if num_elements <= 0:
            raise ValueError(f"need positive element count, got {num_elements}")
        nsel = max(1, int(num_elements * self.expected_density))
        return self.METADATA_BYTES + 4 * nsel + (nsel + 7) // 8
