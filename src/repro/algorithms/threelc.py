"""3LC (Lim et al., 2018) -- ternary quantization with zero-run encoding.

The paper's second §4.4 extensibility case study.  3LC quantizes each
element to {-1, 0, +1} scaled by the tensor's max magnitude, packs five
ternary digits per byte (3**5 = 243 <= 256), and then run-length-encodes
runs of the all-zero byte -- gradient tensors are mostly near-zero, so the
all-zero quintet dominates and the stream shrinks well below the 1.6
bits/element of plain base-3 packing.

Buffer layout: ``count:u4 | scale:f4 | body_len:u4 | rle bytes``.
Bytes 0..242 are literal quintets; bytes 243..255 encode a run of
2..14 all-zero quintets.
"""

from __future__ import annotations

import numpy as np

from .base import CompressionAlgorithm, KernelProfile
from .packing import ByteReader, ByteWriter

__all__ = ["ThreeLC"]

_POWERS = np.asarray([81, 27, 9, 3, 1], dtype=np.uint32)
#: The byte value of a quintet of ternary digit 1 (= quantized zero).
_ZERO_BYTE = int((_POWERS * 1).sum())  # 121
_RUN_BASE = 243
_MAX_RUN = 255 - _RUN_BASE + 2  # runs of 2..14


class ThreeLC(CompressionAlgorithm):
    """Ternary quantization + base-3^5 packing + zero-run encoding."""

    name = "3lc"
    category = "quantization"
    profile = KernelProfile(encode_passes=3, decode_passes=2,
                            encode_kernels=4, decode_kernels=2)

    METADATA_BYTES = 12

    def __init__(self, sparsity_multiplier: float = 1.0):
        if sparsity_multiplier <= 0:
            raise ValueError(
                f"sparsity_multiplier must be positive, got {sparsity_multiplier}")
        self.sparsity_multiplier = float(sparsity_multiplier)

    # -- quantization -------------------------------------------------------

    def _quantize(self, grad: np.ndarray) -> tuple:
        scale = float(np.abs(grad).max()) * self.sparsity_multiplier
        if scale == 0.0:
            return np.full(grad.size, 1, dtype=np.uint8), 0.0
        digits = np.rint(grad / scale).astype(np.int8)
        np.clip(digits, -1, 1, out=digits)
        return (digits + 1).astype(np.uint8), scale  # ternary digits 0/1/2

    # -- run-length encoding over quintet bytes ----------------------------

    @staticmethod
    def _rle_encode(body: np.ndarray) -> np.ndarray:
        out = []
        i = 0
        n = body.size
        while i < n:
            byte = int(body[i])
            if byte == _ZERO_BYTE:
                run = 1
                while (i + run < n and run < _MAX_RUN
                       and int(body[i + run]) == _ZERO_BYTE):
                    run += 1
                if run >= 2:
                    out.append(_RUN_BASE + run - 2)
                    i += run
                    continue
            out.append(byte)
            i += 1
        return np.asarray(out, dtype=np.uint8)

    @staticmethod
    def _rle_decode(stream: np.ndarray) -> np.ndarray:
        out = []
        for byte in stream:
            byte = int(byte)
            if byte >= _RUN_BASE:
                out.extend([_ZERO_BYTE] * (byte - _RUN_BASE + 2))
            else:
                out.append(byte)
        return np.asarray(out, dtype=np.uint8)

    # -- codec --------------------------------------------------------------

    def encode(self, gradient: np.ndarray) -> np.ndarray:
        grad = np.ascontiguousarray(gradient, dtype=np.float32).ravel()
        if grad.size == 0:
            raise ValueError("cannot compress an empty gradient")
        digits, scale = self._quantize(grad)
        pad = (-digits.size) % 5
        if pad:
            digits = np.concatenate(
                [digits, np.full(pad, 1, dtype=np.uint8)])
        quintets = digits.reshape(-1, 5).astype(np.uint32)
        body = (quintets * _POWERS).sum(axis=1).astype(np.uint8)
        rle = self._rle_encode(body)
        return (ByteWriter()
                .scalar(grad.size, "u4")
                .scalar(scale, "f4")
                .scalar(rle.size, "u4")
                .array(rle)
                .finish())

    def decode(self, compressed: np.ndarray) -> np.ndarray:
        reader = ByteReader(compressed)
        count = int(reader.scalar("u4"))
        scale = float(reader.scalar("f4"))
        body_len = int(reader.scalar("u4"))
        body = self._rle_decode(reader.array(np.uint8, body_len))
        quintets = body.astype(np.uint32)[:, None]
        digits = (quintets // _POWERS) % 3
        digits = digits.ravel()[:count].astype(np.int8) - 1
        return digits.astype(np.float32) * np.float32(scale)

    def compressed_nbytes(self, num_elements: int) -> int:
        """Planning estimate: assume ~60 % of quintet bytes RLE away."""
        if num_elements <= 0:
            raise ValueError(f"need positive element count, got {num_elements}")
        quintet_bytes = (num_elements + 4) // 5
        return self.METADATA_BYTES + max(1, int(quintet_bytes * 0.4))
