"""Gradient compression algorithms (real NumPy encode/decode).

The five algorithms the paper builds with CompLL -- onebit, TBQ, TernGrad,
DGC, GradDrop -- plus the two §4.4 extensibility case studies, AdaComp and
3LC.  All are registered in the algorithm registry so CaSync / HiPress can
instantiate them by name.
"""

from .adacomp import AdaComp
from .base import (
    FLOAT_BYTES,
    CompressionAlgorithm,
    KernelProfile,
    available_algorithms,
    get_algorithm,
    register_algorithm,
)
from .dgc import DGC
from .feedback import DGCMomentum, ErrorFeedback
from .graddrop import GradDrop
from .onebit import OneBit
from .packing import ByteReader, ByteWriter, pack_uint, unpack_uint
from .tbq import TBQ
from .terngrad import TernGrad
from .threelc import ThreeLC

register_algorithm("onebit", OneBit)
register_algorithm("tbq", TBQ)
register_algorithm("terngrad", TernGrad)
register_algorithm("dgc", DGC)
register_algorithm("graddrop", GradDrop)
register_algorithm("adacomp", AdaComp)
register_algorithm("3lc", ThreeLC)

__all__ = [
    "AdaComp",
    "ByteReader",
    "ByteWriter",
    "CompressionAlgorithm",
    "DGC",
    "DGCMomentum",
    "ErrorFeedback",
    "FLOAT_BYTES",
    "GradDrop",
    "KernelProfile",
    "OneBit",
    "TBQ",
    "TernGrad",
    "ThreeLC",
    "available_algorithms",
    "get_algorithm",
    "pack_uint",
    "register_algorithm",
    "unpack_uint",
]
