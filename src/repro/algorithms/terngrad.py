"""TernGrad-style stochastic linear quantization (Wen et al., 2017).

This follows the paper's own CompLL rendition of TernGrad (Fig. 5): the
gradient range ``[min, max]`` is divided into ``2**bitwidth - 1`` gaps and
each element is *stochastically* rounded to a ``bitwidth``-bit level, which
keeps the quantizer unbiased: ``E[decode(encode(g))] = g``.  Bitwidth 2 is
the classic ternary-ish setting; Fig. 12b sweeps 2/4/8 bits.

Buffer layout: ``bitwidth:u1 | count:u4 | min:f4 | max:f4 | packed levels``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import CompressionAlgorithm, KernelProfile
from .packing import ByteReader, ByteWriter, pack_uint, unpack_uint

__all__ = ["TernGrad"]


class TernGrad(CompressionAlgorithm):
    """Stochastic ``bitwidth``-bit linear quantization."""

    name = "terngrad"
    category = "quantization"
    # Encode: min/max reduction pass + quantize/pack pass.
    profile = KernelProfile(encode_passes=2, decode_passes=1,
                            encode_kernels=3, decode_kernels=1)

    METADATA_BYTES = 13

    def __init__(self, bitwidth: int = 2, seed: Optional[int] = 0):
        if not 1 <= bitwidth <= 8:
            raise ValueError(f"bitwidth must be in [1, 8], got {bitwidth}")
        self.bitwidth = int(bitwidth)
        self._rng = np.random.default_rng(seed)

    @property
    def levels(self) -> int:
        return (1 << self.bitwidth) - 1

    def encode(self, gradient: np.ndarray) -> np.ndarray:
        grad = np.ascontiguousarray(gradient, dtype=np.float32).ravel()
        if grad.size == 0:
            raise ValueError("cannot compress an empty gradient")
        lo = float(grad.min())
        hi = float(grad.max())
        gap = (hi - lo) / self.levels
        if gap > 0:
            noise = self._rng.random(grad.size, dtype=np.float32)
            q = np.floor((grad - lo) / gap + noise).astype(np.int64)
            np.clip(q, 0, self.levels, out=q)
        else:
            q = np.zeros(grad.size, dtype=np.int64)
        return (ByteWriter()
                .scalar(self.bitwidth, "u1")
                .scalar(grad.size, "u4")
                .scalar(lo, "f4")
                .scalar(hi, "f4")
                .array(pack_uint(q, self.bitwidth))
                .finish())

    def decode(self, compressed: np.ndarray) -> np.ndarray:
        reader = ByteReader(compressed)
        bitwidth = int(reader.scalar("u1"))
        count = int(reader.scalar("u4"))
        lo = float(reader.scalar("f4"))
        hi = float(reader.scalar("f4"))
        levels = (1 << bitwidth) - 1
        gap = (hi - lo) / levels if levels else 0.0
        q = unpack_uint(reader.rest(), bitwidth, count)
        return (np.float32(lo) + q.astype(np.float32) * np.float32(gap))

    def compressed_nbytes(self, num_elements: int) -> int:
        if num_elements <= 0:
            raise ValueError(f"need positive element count, got {num_elements}")
        return self.METADATA_BYTES + (num_elements * self.bitwidth + 7) // 8

    def quantization_gap(self, gradient: np.ndarray) -> float:
        """The decode error bound for ``gradient`` (one quantization step)."""
        grad = np.asarray(gradient, dtype=np.float32)
        return float((grad.max() - grad.min()) / self.levels)
