"""Network fabric model: full-duplex NICs, point-to-point transfers, mailboxes.

The model matches the assumptions the paper's cost analysis (§3.3) is built
on: homogeneous nodes, each with a full-duplex NIC, where sending an
``m``-byte message costs ``latency + m / bandwidth`` and the two directions
of a NIC are independent resources (Ring-allreduce exploits exactly this:
each node sends to its successor while receiving from its predecessor).

Contention is modelled by serializing transfers per NIC direction: a
transfer holds the sender's *uplink* and the receiver's *downlink* for its
serialization time.  Wire latency is added after serialization and does not
occupy either endpoint, so back-to-back messages pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Tuple

from ..sim import Environment, Interrupt, Store

__all__ = ["NetworkSpec", "Nic", "Fabric", "Message", "TransferStats"]


@dataclass(frozen=True)
class NetworkSpec:
    """Capacity of the inter-node network.

    bandwidth_gbps: per-direction NIC bandwidth in Gigabits/s (marketing
        units, e.g. 100 for the paper's EC2 cluster).
    latency_us: one-way wire latency in microseconds.
    efficiency: achievable fraction of line rate (protocol overheads);
        RDMA fabrics typically reach ~0.9.
    """

    bandwidth_gbps: float
    latency_us: float = 5.0
    efficiency: float = 0.9

    def __post_init__(self):
        if self.bandwidth_gbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_gbps}")
        if self.latency_us < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency_us}")
        if not 0 < self.efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")

    @property
    def bytes_per_second(self) -> float:
        """Effective payload bandwidth in bytes/s per direction."""
        return self.bandwidth_gbps * 1e9 / 8 * self.efficiency

    @property
    def latency_s(self) -> float:
        return self.latency_us * 1e-6

    def transfer_time(self, nbytes: float) -> float:
        """Uncontended time to move ``nbytes`` point-to-point."""
        return self.latency_s + nbytes / self.bytes_per_second


@dataclass
class TransferStats:
    """Aggregate accounting of fabric usage, for experiment reporting."""

    bytes_sent: float = 0.0
    messages: int = 0
    per_node_bytes: Dict[int, float] = field(default_factory=dict)

    def record(self, src: int, nbytes: float) -> None:
        self.bytes_sent += nbytes
        self.messages += 1
        self.per_node_bytes[src] = self.per_node_bytes.get(src, 0.0) + nbytes


class Nic:
    """A full-duplex network interface.

    Each direction is a FIFO serialization server tracked by a next-free
    timestamp.  Transfers reserve (sender-up, receiver-down) atomically at
    issue time, which models "a node talks to one peer at a time per
    direction" without the hold-and-wait deadlock a two-resource acquire
    would allow.
    """

    def __init__(self, env: Environment, spec: NetworkSpec):
        self.env = env
        self.spec = spec
        #: Simulated timestamps at which each direction becomes free.
        self.up_free = 0.0
        self.down_free = 0.0
        #: Cumulative seconds each direction spent busy (for utilization).
        self.up_busy = 0.0
        self.down_busy = 0.0


@dataclass(frozen=True)
class Message:
    """A delivered payload with its transfer metadata."""

    src: int
    dst: int
    tag: Hashable
    payload: Any
    nbytes: float
    sent_at: float
    delivered_at: float


class Fabric:
    """A cluster-wide network of ``num_nodes`` NICs plus tagged mailboxes.

    Two interfaces:

    * :meth:`transfer` -- timing-only point-to-point move (generator).
    * :meth:`send` / :meth:`recv` -- message passing with tags; ``send``
      spawns a background transfer process and ``recv`` blocks on the
      (dst, tag) mailbox.  Tags make protocols self-synchronizing without
      global barriers.
    """

    def __init__(self, env: Environment, num_nodes: int, spec: NetworkSpec):
        if num_nodes < 1:
            raise ValueError(f"need at least 1 node, got {num_nodes}")
        self.env = env
        self.spec = spec
        self.num_nodes = num_nodes
        self.nics = [Nic(env, spec) for _ in range(num_nodes)]
        self._mailboxes: Dict[Tuple[int, Hashable], Store] = {}
        self.stats = TransferStats()
        #: Optional :class:`~repro.faults.injector.FaultState` attached by a
        #: FaultInjector.  None means the pristine (and byte-identical to
        #: the pre-fault-subsystem) transfer path.
        self.faults = None

    # -- timing-only transfers -------------------------------------------

    def transfer(self, src: int, dst: int, nbytes: float,
                 span_parent=None):
        """Generator: completes when ``nbytes`` from src arrive at dst.

        Holds src's uplink and dst's downlink for the serialization time;
        wire latency is appended without occupying either NIC.  A loopback
        (src == dst) is free: local data never touches the NIC.

        ``span_parent`` links the telemetry transfer span under a causing
        span (a send task, a coordinator batch); it is ignored when no
        collector is attached.
        """
        self._check_node(src)
        self._check_node(dst)
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        if src == dst:
            return
        tel = self.env.telemetry
        if tel is None:
            if self.faults is not None:
                yield from self._transfer_faulty(src, dst, nbytes)
            else:
                yield from self._transfer_pristine(src, dst, nbytes)
            return
        span = tel.begin(f"xfer:{src}->{dst}", category="transfer",
                         track=f"node{src}/transfer", parent=span_parent,
                         at=self.env.now, src=src, dst=dst, nbytes=nbytes)
        try:
            if self.faults is not None:
                yield from self._transfer_faulty(src, dst, nbytes)
            else:
                yield from self._transfer_pristine(src, dst, nbytes)
        except BaseException as exc:
            tel.finish(span, self.env.now, outcome=type(exc).__name__)
            tel.metrics.counter("net.transfer_failures").inc()
            raise
        tel.finish(span, self.env.now, outcome="delivered")
        tel.metrics.counter("net.bytes_sent").inc(nbytes)
        tel.metrics.counter("net.messages").inc()
        tel.metrics.histogram("net.transfer_s").observe(span.duration)

    def _transfer_pristine(self, src: int, dst: int, nbytes: float):
        """The fault-free transfer path (no FaultState attached)."""
        env = self.env
        sender, receiver = self.nics[src], self.nics[dst]
        serialize = nbytes / self.spec.bytes_per_second
        # Each direction is an independent fluid FIFO: the sender's uplink
        # and the receiver's downlink each process the bytes when they get
        # to them, and delivery completes when the slower side has.  This
        # avoids convoy collapse under incast (an idle uplink is never
        # blocked just because the peer's downlink is backed up).
        up_finish = max(env.now, sender.up_free) + serialize
        down_finish = max(env.now, receiver.down_free) + serialize
        sender.up_free = up_finish
        receiver.down_free = down_finish
        sender.up_busy += serialize
        receiver.down_busy += serialize
        finish = max(up_finish, down_finish)
        yield env.timeout(finish + self.spec.latency_s - env.now)
        self.stats.record(src, nbytes)

    def _transfer_faulty(self, src: int, dst: int, nbytes: float):
        """The transfer path when a FaultState is attached.

        Semantics of the fault model:

        * a partitioned link (or a dead destination) *stalls* the transfer
          -- like TCP retransmitting into a black hole -- until the link is
          restored, the node restarts, or the caller's timeout interrupts
          the wait;
        * a transient failure consumes half the serialization time on the
          sender's uplink, then loses the bytes (recorded as dropped);
        * a degraded link stretches serialization by the degradation
          factor;
        * a destination that dies while bytes are in flight drops them at
          delivery time;
        * an interrupted (abandoned-by-timeout) attempt records its bytes
          as dropped before re-raising, so conservation still balances.

        With an attached-but-quiescent FaultState (empty schedule) this
        path performs the identical event sequence to the pristine one, so
        timing and trace hashes match exactly.
        """
        from ..faults.errors import TransferError  # local: avoids a cycle

        env = self.env
        faults = self.faults
        record = faults.log.begin(env.now, src, dst, nbytes)
        try:
            while faults.blocked(src, dst):
                yield faults.wait_event(src, dst)
            if faults.is_dead(src):
                record.drop(env.now, "src-dead")
                raise TransferError(src, dst, nbytes, "source node is dead")
            sender, receiver = self.nics[src], self.nics[dst]
            serialize = (nbytes / self.spec.bytes_per_second
                         * faults.link_factor(src, dst))
            if faults.take_transient(src, dst):
                partial = serialize * 0.5
                up_finish = max(env.now, sender.up_free) + partial
                sender.up_free = up_finish
                sender.up_busy += partial
                yield env.timeout(up_finish - env.now)
                record.drop(env.now, "transient")
                raise TransferError(src, dst, nbytes,
                                    "transient send failure")
            up_finish = max(env.now, sender.up_free) + serialize
            down_finish = max(env.now, receiver.down_free) + serialize
            sender.up_free = up_finish
            receiver.down_free = down_finish
            sender.up_busy += serialize
            receiver.down_busy += serialize
            finish = max(up_finish, down_finish)
            yield env.timeout(finish + self.spec.latency_s - env.now)
            if faults.is_dead(dst):
                record.drop(env.now, "dst-dead")
                raise TransferError(src, dst, nbytes,
                                    "destination crashed in flight")
            self.stats.record(src, nbytes)
            record.deliver(env.now)
        except Interrupt:
            record.drop(env.now, "abandoned")
            raise

    # -- tagged message passing ------------------------------------------

    def _mailbox(self, dst: int, tag: Hashable) -> Store:
        key = (dst, tag)
        box = self._mailboxes.get(key)
        if box is None:
            box = Store(self.env)
            self._mailboxes[key] = box
        return box

    def send(self, src: int, dst: int, tag: Hashable, payload: Any,
             nbytes: float):
        """Start an asynchronous tagged send; returns the transfer Process."""
        sent_at = self.env.now

        def _send():
            yield from self.transfer(src, dst, nbytes)
            msg = Message(src=src, dst=dst, tag=tag, payload=payload,
                          nbytes=nbytes, sent_at=sent_at,
                          delivered_at=self.env.now)
            self._mailbox(dst, tag).put(msg)

        return self.env.process(_send(), name=f"send:{src}->{dst}:{tag}")

    def recv(self, dst: int, tag: Hashable):
        """Event firing with the next :class:`Message` for (dst, tag)."""
        self._check_node(dst)
        return self._mailbox(dst, tag).get()

    # -- helpers -----------------------------------------------------------

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside [0, {self.num_nodes})")

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Mean busy fraction across all NIC directions over ``horizon``."""
        horizon = self.env.now if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        busy = sum(n.up_busy + n.down_busy for n in self.nics)
        return busy / (2 * self.num_nodes * horizon)
