"""Network fabric model: full-duplex NICs, point-to-point transfers, mailboxes.

The model generalizes the assumptions the paper's cost analysis (§3.3) is
built on: every node has a full-duplex NIC whose two directions are
independent resources (Ring-allreduce exploits exactly this: each node
sends to its successor while receiving from its predecessor), and sending
an ``m``-byte message costs ``latency + m / bandwidth``.  The paper's
clusters are *uniform* -- one scalar bandwidth for every NIC -- but a
:class:`NetworkSpec` can additionally carry per-NIC capacity profiles:

* :class:`StragglerProfile` -- a deterministically seeded distribution of
  per-node bandwidth multipliers (a fraction of nodes degraded by a
  severity divisor, plus optional jitter on every node);
* :class:`WanTier` -- a deterministically seeded subset of nodes sitting
  behind WAN-grade links: asymmetric up/down bandwidth and millisecond
  latency, the geo-distributed / edge-training regime.

The resolved capacity of node ``i``'s NIC is its :class:`LinkSpec`
(``spec.links(num_nodes)[i]``).  A uniform spec resolves every node to
the same link, and every code path below is bit-identical to the scalar
model in that case.

Contention is modelled by serializing transfers per NIC direction: a
transfer holds the sender's *uplink* at the sender's uplink rate and the
receiver's *downlink* at the receiver's downlink rate.  Wire latency (the
slower endpoint's) is added after serialization and does not occupy
either endpoint, so back-to-back messages pipeline.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Generator, Hashable, List, Optional,
                    Sequence, Tuple)

import numpy as np

from ..sim import Environment, Event, Interrupt, Process, Store

__all__ = ["LinkSpec", "NetworkSpec", "Nic", "Fabric", "Message",
           "StragglerProfile", "TransferStats", "WanTier"]


@dataclass(frozen=True)
class LinkSpec:
    """Resolved capacity of one node's NIC: per-direction rate + latency."""

    up_bytes_per_s: float
    down_bytes_per_s: float
    latency_s: float

    def __post_init__(self) -> None:
        if self.up_bytes_per_s <= 0 or self.down_bytes_per_s <= 0:
            raise ValueError(
                f"link rates must be positive, got "
                f"{self.up_bytes_per_s}/{self.down_bytes_per_s}")
        if self.latency_s < 0:
            raise ValueError(
                f"link latency must be non-negative, got {self.latency_s}")

    @property
    def bottleneck_bytes_per_s(self) -> float:
        """The slower of the two directions."""
        return min(self.up_bytes_per_s, self.down_bytes_per_s)

    def transfer_time(self, nbytes: float) -> float:
        """Uncontended time to move ``nbytes`` through this link's
        slower direction."""
        return self.latency_s + nbytes / self.bottleneck_bytes_per_s


def _profile_rng(tag: str, seed: int, num_nodes: int) -> np.random.Generator:
    """Seeded RNG for a per-node profile draw.

    crc32 (not ``hash()``) keys the generator because str hashing is
    PYTHONHASHSEED-salted; the draw is a pure function of
    ``(tag, seed, num_nodes)``, so profiles resolve identically across
    processes and runs.
    """
    key = f"{tag}:{seed}:{num_nodes}"
    return np.random.default_rng(zlib.crc32(key.encode("utf-8")))


@dataclass(frozen=True)
class StragglerProfile:
    """Deterministic per-node bandwidth-multiplier distribution.

    ``fraction`` of the nodes (chosen by a seeded permutation) have both
    NIC directions slowed by ``severity``; ``jitter`` additionally scales
    *every* node's bandwidth by a uniform draw from ``[1 - jitter, 1)``,
    modelling the background contention real multi-tenant fabrics show.
    ``multipliers(num_nodes)`` is a pure function of
    ``(seed, num_nodes)`` -- same cluster size, same stragglers.
    """

    fraction: float = 0.125
    severity: float = 4.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.fraction <= 1:
            raise ValueError(
                f"straggler fraction must be in [0, 1], got {self.fraction}")
        if self.severity < 1:
            raise ValueError(
                f"straggler severity must be >= 1, got {self.severity}")
        if not 0 <= self.jitter < 1:
            raise ValueError(
                f"straggler jitter must be in [0, 1), got {self.jitter}")

    def count(self, num_nodes: int) -> int:
        """How many nodes are degraded at scale ``num_nodes``."""
        if self.fraction == 0 or self.severity == 1:
            return 0
        return max(1, int(round(self.fraction * num_nodes)))

    def multipliers(self, num_nodes: int) -> Tuple[float, ...]:
        """Per-node bandwidth multipliers in ``(0, 1]``, deterministic."""
        rng = _profile_rng("straggler", self.seed, num_nodes)
        mult = np.ones(num_nodes, dtype=np.float64)
        picks = rng.permutation(num_nodes)[:self.count(num_nodes)]
        mult[picks] = 1.0 / self.severity
        if self.jitter:
            mult *= 1.0 - self.jitter * rng.random(num_nodes)
        return tuple(float(m) for m in mult)


@dataclass(frozen=True)
class WanTier:
    """A deterministically chosen subset of nodes behind WAN-grade links.

    Members keep their node identity but their NIC is replaced by an
    *asymmetric* link -- edge uplinks are typically far narrower than
    downlinks -- with millisecond-class one-way latency.  ``up_gbps`` /
    ``down_gbps`` are line rates; the owning :class:`NetworkSpec`'s
    ``efficiency`` applies to them like to the core links.
    """

    fraction: float = 0.25
    up_gbps: float = 1.0
    down_gbps: float = 4.0
    latency_us: float = 20_000.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.fraction <= 1:
            raise ValueError(
                f"WAN fraction must be in (0, 1], got {self.fraction}")
        if self.up_gbps <= 0 or self.down_gbps <= 0:
            raise ValueError(
                f"WAN rates must be positive, got "
                f"{self.up_gbps}/{self.down_gbps}")
        if self.latency_us < 0:
            raise ValueError(
                f"WAN latency must be non-negative, got {self.latency_us}")

    def members(self, num_nodes: int) -> Tuple[int, ...]:
        """The WAN-resident node indices, deterministic in
        ``(seed, num_nodes)`` and sorted."""
        count = min(num_nodes, max(1, int(round(self.fraction * num_nodes))))
        rng = _profile_rng("wan", self.seed, num_nodes)
        picks = rng.permutation(num_nodes)[:count]
        return tuple(sorted(int(p) for p in picks))


@dataclass(frozen=True)
class NetworkSpec:
    """Capacity of the inter-node network.

    bandwidth_gbps: per-direction NIC bandwidth in Gigabits/s (marketing
        units, e.g. 100 for the paper's EC2 cluster).
    latency_us: one-way wire latency in microseconds.
    efficiency: achievable fraction of line rate (protocol overheads);
        RDMA fabrics typically reach ~0.9.
    straggler: optional per-node bandwidth-multiplier distribution
        (None = every NIC at full rate).
    wan: optional WAN tier (None = all nodes on the core network).
    link_overrides: optional explicit per-node :class:`LinkSpec` tuple.
        Profiles resolve links as a seeded function of ``num_nodes`` and
        node *index*, so renumbering a roster subset would scramble who
        is slow; an elastic sub-cluster (``ClusterSpec.subset``) instead
        freezes each surviving node's already-resolved link here,
        preserving per-node identity across epochs.  When set it *is*
        the link table: profiles are ignored and ``links(n)`` demands
        ``n == len(link_overrides)``.

    With both profiles and the override None the spec is *uniform* and
    every consumer is bit-identical to the pre-heterogeneity scalar
    model.
    """

    bandwidth_gbps: float
    latency_us: float = 5.0
    efficiency: float = 0.9
    straggler: Optional[StragglerProfile] = None
    wan: Optional[WanTier] = None
    link_overrides: Optional[Tuple[LinkSpec, ...]] = None

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_gbps}")
        if self.latency_us < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency_us}")
        if not 0 < self.efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")
        if self.link_overrides is not None:
            links = tuple(self.link_overrides)
            if not links:
                raise ValueError("link_overrides may not be empty")
            for link in links:
                if not isinstance(link, LinkSpec):
                    raise TypeError(
                        f"link_overrides entries must be LinkSpec, "
                        f"got {link!r}")
            object.__setattr__(self, "link_overrides", links)

    @property
    def bytes_per_second(self) -> float:
        """Effective payload bandwidth in bytes/s per direction (the
        *core* rate; per-node profiles modify it -- see :meth:`links`)."""
        return self.bandwidth_gbps * 1e9 / 8 * self.efficiency

    @property
    def latency_s(self) -> float:
        return self.latency_us * 1e-6

    @property
    def is_uniform(self) -> bool:
        """True when every NIC resolves to the same :class:`LinkSpec`."""
        return (self.straggler is None and self.wan is None
                and self.link_overrides is None)

    def links(self, num_nodes: int) -> Tuple[LinkSpec, ...]:
        """Resolve every node's NIC capacity at scale ``num_nodes``.

        Pure in ``(self, num_nodes)``: profile membership and multipliers
        come from seeded draws, so the same spec resolves to the same
        links in every process.  WAN links replace the core rate/latency
        outright; straggler multipliers then apply to whatever rate the
        node ended up with (a WAN node can also be a straggler).  An
        explicit ``link_overrides`` table short-circuits resolution.
        """
        if self.link_overrides is not None:
            if num_nodes != len(self.link_overrides):
                raise ValueError(
                    f"spec pins {len(self.link_overrides)} per-node links "
                    f"but was resolved for {num_nodes} nodes")
            return self.link_overrides
        base = self.bytes_per_second
        lat = self.latency_s
        if self.is_uniform:
            link = LinkSpec(base, base, lat)
            return (link,) * num_nodes
        up = [base] * num_nodes
        down = [base] * num_nodes
        latency = [lat] * num_nodes
        if self.wan is not None:
            wan_up = self.wan.up_gbps * 1e9 / 8 * self.efficiency
            wan_down = self.wan.down_gbps * 1e9 / 8 * self.efficiency
            wan_lat = self.wan.latency_us * 1e-6
            for member in self.wan.members(num_nodes):
                up[member] = wan_up
                down[member] = wan_down
                latency[member] = wan_lat
        if self.straggler is not None:
            for i, mult in enumerate(self.straggler.multipliers(num_nodes)):
                up[i] *= mult
                down[i] *= mult
        return tuple(LinkSpec(u, d, l)
                     for u, d, l in zip(up, down, latency))

    def bottleneck(self, num_nodes: int) -> LinkSpec:
        """The slowest participating capacities at scale ``num_nodes``:
        min uplink rate, min downlink rate, max latency.

        This is what a bottleneck-aware cost model plans against -- under
        BSP, synchronization finishes when the slowest link has.  Uniform
        specs resolve to the core link unchanged.
        """
        if self.is_uniform:
            base = self.bytes_per_second
            return LinkSpec(base, base, self.latency_s)
        links = self.links(num_nodes)
        return LinkSpec(
            min(link.up_bytes_per_s for link in links),
            min(link.down_bytes_per_s for link in links),
            max(link.latency_s for link in links))

    def transfer_time(self, nbytes: float) -> float:
        """Uncontended time to move ``nbytes`` point-to-point over the
        *core* network (per-node profiles excluded; see
        :meth:`bottleneck` for the planning-grade worst case)."""
        return self.latency_s + nbytes / self.bytes_per_second


@dataclass
class TransferStats:
    """Aggregate accounting of fabric usage, for experiment reporting."""

    bytes_sent: float = 0.0
    messages: int = 0
    per_node_bytes: Dict[int, float] = field(default_factory=dict)

    def record(self, src: int, nbytes: float) -> None:
        self.bytes_sent += nbytes
        self.messages += 1
        self.per_node_bytes[src] = self.per_node_bytes.get(src, 0.0) + nbytes


class Nic:
    """A full-duplex network interface.

    Each direction is a FIFO serialization server tracked by a next-free
    timestamp.  Transfers reserve (sender-up, receiver-down) atomically at
    issue time, which models "a node talks to one peer at a time per
    direction" without the hold-and-wait deadlock a two-resource acquire
    would allow.
    """

    def __init__(self, env: Environment, spec: NetworkSpec,
                 link: Optional[LinkSpec] = None) -> None:
        self.env = env
        self.spec = spec
        #: This NIC's resolved capacity (rate per direction + latency).
        #: Defaults to the spec's core link for standalone construction.
        if link is None:
            base = spec.bytes_per_second
            link = LinkSpec(base, base, spec.latency_s)
        self.link = link
        #: Simulated timestamps at which each direction becomes free.
        self.up_free = 0.0
        self.down_free = 0.0
        #: Cumulative seconds each direction spent busy (for utilization).
        self.up_busy = 0.0
        self.down_busy = 0.0


@dataclass(frozen=True)
class Message:
    """A delivered payload with its transfer metadata."""

    src: int
    dst: int
    tag: Hashable
    payload: Any
    nbytes: float
    sent_at: float
    delivered_at: float


class Fabric:
    """A cluster-wide network of ``num_nodes`` NICs plus tagged mailboxes.

    Two interfaces:

    * :meth:`transfer` -- timing-only point-to-point move (generator).
    * :meth:`send` / :meth:`recv` -- message passing with tags; ``send``
      spawns a background transfer process and ``recv`` blocks on the
      (dst, tag) mailbox.  Tags make protocols self-synchronizing without
      global barriers.
    """

    def __init__(self, env: Environment, num_nodes: int,
                 spec: NetworkSpec) -> None:
        if num_nodes < 1:
            raise ValueError(f"need at least 1 node, got {num_nodes}")
        self.env = env
        self.spec = spec
        self.num_nodes = num_nodes
        #: Per-node resolved NIC capacities (uniform specs resolve every
        #: node to the same link; see :meth:`NetworkSpec.links`).
        self.links: Tuple[LinkSpec, ...] = spec.links(num_nodes)
        self.nics = [Nic(env, spec, link)
                     for link in self.links]
        # Column views of the links for the vectorized bulk path.  With a
        # uniform spec every entry equals the scalar the pre-heterogeneity
        # code divided by / added, so the elementwise arithmetic below is
        # bit-identical to the scalar arithmetic it replaced.
        self._up_rates = np.array(
            [link.up_bytes_per_s for link in self.links], dtype=np.float64)
        self._down_rates = np.array(
            [link.down_bytes_per_s for link in self.links], dtype=np.float64)
        self._latencies = np.array(
            [link.latency_s for link in self.links], dtype=np.float64)
        self._mailboxes: Dict[Tuple[int, Hashable], Store] = {}
        self.stats = TransferStats()
        #: Optional :class:`~repro.faults.injector.FaultState` attached by a
        #: FaultInjector.  None means the pristine (and byte-identical to
        #: the pre-fault-subsystem) transfer path.
        self.faults: Any = None
        #: Nodes whose NIC has been torn down (elastic departures).
        #: Normally empty, in which case every path below is untouched.
        self._inactive: set = set()

    # -- elastic link teardown / bring-up ---------------------------------

    def node_active(self, node: int) -> bool:
        """Whether ``node``'s NIC is up (True unless torn down)."""
        self._check_node(node)
        return node not in self._inactive

    def deactivate_node(self, node: int) -> None:
        """Tear down ``node``'s NIC (an elastic departure).

        Queued mailbox messages addressed to the departed node are
        dropped -- nobody will ever ``recv`` them -- and any transfer
        touching the node from now on fails fast with a typed
        :class:`~repro.faults.errors.TransferError` instead of
        serializing bytes into a dark NIC.  Idempotent.
        """
        self._check_node(node)
        if node in self._inactive:
            return
        self._inactive.add(node)
        for key in sorted(self._mailboxes, key=repr):
            if key[0] == node:
                # Drop undelivered payloads in place: popping via get()
                # would schedule stray succeed events into the calendar.
                self._mailboxes[key]._items.clear()

    def activate_node(self, node: int) -> None:
        """Bring ``node``'s NIC back up with a clean serialization queue
        (an elastic join / rejoin).  Idempotent."""
        self._check_node(node)
        if node not in self._inactive:
            return
        self._inactive.discard(node)
        # A rejoining NIC starts cold: fresh free/busy clocks, same
        # resolved LinkSpec (per-node identity survives the bounce).
        self.nics[node] = Nic(self.env, self.spec, self.links[node])

    def _check_active(self, src: int, dst: int, nbytes: float) -> None:
        if self._inactive and (src in self._inactive
                               or dst in self._inactive):
            from ..faults.errors import TransferError  # local: avoids cycle
            down = src if src in self._inactive else dst
            raise TransferError(src, dst, nbytes,
                                f"node {down}'s NIC is torn down "
                                f"(departed the membership)")

    # -- timing-only transfers -------------------------------------------

    def transfer(self, src: int, dst: int, nbytes: float,
                 span_parent: Optional[Any] = None
                 ) -> Generator[Any, Any, None]:
        """Generator: completes when ``nbytes`` from src arrive at dst.

        Holds src's uplink and dst's downlink for the serialization time;
        wire latency is appended without occupying either NIC.  A loopback
        (src == dst) is free: local data never touches the NIC.

        ``span_parent`` links the telemetry transfer span under a causing
        span (a send task, a coordinator batch); it is ignored when no
        collector is attached.
        """
        self._check_node(src)
        self._check_node(dst)
        if self._inactive:
            self._check_active(src, dst, nbytes)
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        if src == dst:
            return
        tel = self.env.telemetry
        if tel is None:
            if self.faults is not None:
                yield from self._transfer_faulty(src, dst, nbytes)
            else:
                yield from self._transfer_pristine(src, dst, nbytes)
            return
        span = tel.begin(f"xfer:{src}->{dst}", category="transfer",
                         track=f"node{src}/transfer", parent=span_parent,
                         at=self.env.now, src=src, dst=dst, nbytes=nbytes)
        try:
            if self.faults is not None:
                yield from self._transfer_faulty(src, dst, nbytes)
            else:
                yield from self._transfer_pristine(src, dst, nbytes)
        except BaseException as exc:
            tel.finish(span, self.env.now, outcome=type(exc).__name__)
            tel.metrics.counter("net.transfer_failures").inc()
            raise
        tel.finish(span, self.env.now, outcome="delivered")
        tel.metrics.counter("net.bytes_sent").inc(nbytes)
        tel.metrics.counter("net.messages").inc()
        tel.metrics.histogram("net.transfer_s").observe(span.duration)

    def _transfer_pristine(self, src: int, dst: int,
                           nbytes: float) -> Generator[Any, Any, None]:
        """The fault-free transfer path (no FaultState attached)."""
        env = self.env
        sender, receiver = self.nics[src], self.nics[dst]
        up_ser = nbytes / sender.link.up_bytes_per_s
        down_ser = nbytes / receiver.link.down_bytes_per_s
        # Each direction is an independent fluid FIFO: the sender's uplink
        # and the receiver's downlink each process the bytes when they get
        # to them, at their own link's rate, and delivery completes when
        # the slower side has.  This avoids convoy collapse under incast
        # (an idle uplink is never blocked just because the peer's
        # downlink is backed up).
        up_finish = max(env.now, sender.up_free) + up_ser
        down_finish = max(env.now, receiver.down_free) + down_ser
        sender.up_free = up_finish
        receiver.down_free = down_finish
        sender.up_busy += up_ser
        receiver.down_busy += down_ser
        finish = max(up_finish, down_finish)
        latency = max(sender.link.latency_s, receiver.link.latency_s)
        yield env.timeout(finish + latency - env.now)
        self.stats.record(src, nbytes)

    def _transfer_faulty(self, src: int, dst: int,
                         nbytes: float) -> Generator[Any, Any, None]:
        """The transfer path when a FaultState is attached.

        Semantics of the fault model:

        * a partitioned link (or a dead destination) *stalls* the transfer
          -- like TCP retransmitting into a black hole -- until the link is
          restored, the node restarts, or the caller's timeout interrupts
          the wait;
        * a transient failure consumes half the serialization time on the
          sender's uplink, then loses the bytes (recorded as dropped);
        * a degraded link stretches serialization by the degradation
          factor;
        * a destination that dies while bytes are in flight drops them at
          delivery time;
        * an interrupted (abandoned-by-timeout) attempt records its bytes
          as dropped before re-raising, so conservation still balances.

        With an attached-but-quiescent FaultState (empty schedule) this
        path performs the identical event sequence to the pristine one, so
        timing and trace hashes match exactly.
        """
        from ..faults.errors import TransferError  # local: avoids a cycle

        env = self.env
        faults = self.faults
        record = faults.log.begin(env.now, src, dst, nbytes)
        try:
            while faults.blocked(src, dst):
                yield faults.wait_event(src, dst)
            if faults.is_dead(src):
                record.drop(env.now, "src-dead")
                raise TransferError(src, dst, nbytes, "source node is dead")
            sender, receiver = self.nics[src], self.nics[dst]
            factor = faults.link_factor(src, dst)
            up_ser = nbytes / sender.link.up_bytes_per_s * factor
            down_ser = nbytes / receiver.link.down_bytes_per_s * factor
            if faults.take_transient(src, dst):
                partial = up_ser * 0.5
                up_finish = max(env.now, sender.up_free) + partial
                sender.up_free = up_finish
                sender.up_busy += partial
                yield env.timeout(up_finish - env.now)
                record.drop(env.now, "transient")
                raise TransferError(src, dst, nbytes,
                                    "transient send failure")
            up_finish = max(env.now, sender.up_free) + up_ser
            down_finish = max(env.now, receiver.down_free) + down_ser
            sender.up_free = up_finish
            receiver.down_free = down_finish
            sender.up_busy += up_ser
            receiver.down_busy += down_ser
            finish = max(up_finish, down_finish)
            latency = max(sender.link.latency_s, receiver.link.latency_s)
            yield env.timeout(finish + latency - env.now)
            if faults.is_dead(dst):
                record.drop(env.now, "dst-dead")
                raise TransferError(src, dst, nbytes,
                                    "destination crashed in flight")
            self.stats.record(src, nbytes)
            record.deliver(env.now)
        except Interrupt:
            record.drop(env.now, "abandoned")
            raise

    # -- vectorized bulk transfers ---------------------------------------

    def _check_active_bulk(self, transfers: Sequence[Tuple[int, int, float]]
                           ) -> None:
        if self._inactive:
            for src, dst, nbytes in transfers:
                self._check_active(src, dst, nbytes)

    def bulk_transfer(self, transfers: Sequence[Tuple[int, int, float]],
                      handler: Optional[Callable[[int], None]] = None
                      ) -> Optional[List[Any]]:
        """Issue a batch of point-to-point transfers in one reservation pass.

        ``transfers`` is a sequence of ``(src, dst, nbytes)`` triples, all
        issued at the current instant.  Instead of spawning one generator
        process (and its initializer, timeout, and completion events) per
        message, the NIC reservation arithmetic for the whole batch runs as
        a NumPy pass and each message gets exactly one delivery event.

        The arithmetic reproduces :meth:`transfer` bit for bit: messages
        sharing a NIC direction are serialized in list order with a
        left-to-right ``np.add.accumulate`` (the same float addition
        sequence the sequential path performs), and per-message statistics
        are recorded in each delivery callback so accumulation order
        matches the per-message path's delivery order.

        Two completion interfaces:

        * ``handler`` given -- ``handler(index)`` is invoked at message
          ``index``'s delivery instant.  Delivery events are pooled
          carriers; nothing user-visible is retained.
        * ``handler`` omitted -- returns one completion event per message,
          firing at its delivery instant with ``(src, dst, nbytes)`` as
          value.

        When a :class:`FaultState` is attached (or the engine's
        ``vector_bulk`` knob is off) the batch falls back to one
        :meth:`transfer` process per message, so crash/partition semantics
        -- including aborting mid-bulk -- are exactly the per-message
        ones; fallback completion events are the transfer processes
        themselves and fail with the per-message ``TransferError``.

        Loopback messages (src == dst) are free, as on :meth:`transfer`:
        no NIC time, no statistics, completion at the issue instant
        (``handler`` is invoked synchronously).
        """
        n = len(transfers)
        if n == 0:
            return None if handler is not None else []
        self._check_active_bulk(transfers)
        env = self.env
        if self.faults is not None or not env.engine.vector_bulk:
            return self._bulk_fallback(transfers, handler)
        now = env.now
        srcs, dsts, sizes = self._bulk_arrays(transfers, n)
        loop = srcs == dsts
        if loop.any():
            wire = np.flatnonzero(~loop)
            wire_srcs, wire_dsts = srcs[wire], dsts[wire]
            wire_sizes = sizes[wire]
        else:
            wire = None
            wire_srcs, wire_dsts, wire_sizes = srcs, dsts, sizes
        # Per-message serialization at each endpoint's own link rate, and
        # the slower endpoint's wire latency.  With a uniform spec every
        # gathered rate/latency equals the old scalar, so the elementwise
        # arithmetic is bit-identical to the scalar broadcast it replaced.
        up_ser = wire_sizes / self._up_rates[wire_srcs]
        down_ser = wire_sizes / self._down_rates[wire_dsts]
        wire_lat = np.maximum(self._latencies[wire_srcs],
                              self._latencies[wire_dsts])
        up_finish = self._reserve_direction(wire_srcs, up_ser, now,
                                            up=True)
        down_finish = self._reserve_direction(wire_dsts, down_ser, now,
                                              up=False)
        wire_delays = (np.maximum(up_finish, down_finish)
                       + wire_lat - now)
        if wire is None:
            delays = wire_delays.tolist()
        else:
            full = np.zeros(n, dtype=np.float64)
            full[wire] = wire_delays
            delays = full.tolist()
        loop_list = loop.tolist()
        src_list = srcs.tolist()
        size_list = sizes.tolist()
        tel = env.telemetry
        if tel is not None:
            tel.metrics.counter("net.bulk_batches").inc()
            tel.metrics.counter("net.bulk_messages").inc(n)
        if handler is not None:
            done = self._bulk_handler_done
            acquire = env._acquire_carrier
            schedule = env.schedule
            for i in range(n):
                if loop_list[i]:
                    handler(i)
                    continue
                carrier = acquire(True, (src_list[i], size_list[i],
                                         handler, i))
                assert carrier.callbacks is not None
                carrier.callbacks.append(done)
                schedule(carrier, delay=delays[i])
            return None
        events = []
        record = self._bulk_record_done
        dst_list = dsts.tolist()
        for i in range(n):
            event = Event(env)
            event._ok = True
            event._value = (src_list[i], dst_list[i], size_list[i])
            if not loop_list[i]:
                assert event.callbacks is not None
                event.callbacks.append(record)
            env.schedule(event, delay=delays[i])
            events.append(event)
        return events

    def _bulk_arrays(self, transfers: Sequence[Tuple[int, int, float]],
                     n: int) -> Tuple["np.ndarray", "np.ndarray",
                                      "np.ndarray"]:
        """Validated (srcs, dsts, sizes) column arrays for a bulk batch."""
        arr = np.asarray(transfers, dtype=np.float64)
        if arr.shape != (n, 3):
            raise ValueError(
                "bulk transfers must be (src, dst, nbytes) triples")
        srcs = arr[:, 0].astype(np.int64)
        dsts = arr[:, 1].astype(np.int64)
        sizes = np.ascontiguousarray(arr[:, 2])
        lo = min(int(srcs.min()), int(dsts.min()))
        hi = max(int(srcs.max()), int(dsts.max()))
        if lo < 0 or hi >= self.num_nodes:
            raise ValueError(f"node outside [0, {self.num_nodes})")
        if np.any(sizes < 0):
            raise ValueError("negative transfer size in bulk")
        return srcs, dsts, sizes

    def _reserve_direction(self, nodes: "np.ndarray",
                           serialize: "np.ndarray", now: float,
                           up: bool) -> "np.ndarray":
        """Per-NIC-direction FIFO reservation for one side of a batch.

        Groups messages by NIC (stable sort keeps list order within a
        group) and serializes each group with a left-fold accumulate whose
        float addition order is identical to issuing the messages one by
        one.  Busy-time counters likewise accumulate per message, in the
        same order, so utilization metrics match the sequential path to
        the last bit.
        """
        n = len(nodes)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        order = np.argsort(nodes, kind="stable")
        sorted_nodes = nodes[order]
        sorted_ser = serialize[order]
        cuts = np.flatnonzero(sorted_nodes[1:] != sorted_nodes[:-1]) + 1
        starts = np.concatenate(([0], cuts))
        ends = np.concatenate((cuts, [n]))
        lens = ends - starts
        g = len(starts)
        nics = self.nics
        group_nodes = sorted_nodes[starts].tolist()
        free0 = np.empty(g, dtype=np.float64)
        busy0 = np.empty(g, dtype=np.float64)
        if up:
            for j, node in enumerate(group_nodes):
                nic = nics[node]
                free0[j] = nic.up_free
                busy0[j] = nic.up_busy
        else:
            for j, node in enumerate(group_nodes):
                nic = nics[node]
                free0[j] = nic.down_free
                busy0[j] = nic.down_busy
        base = np.maximum(free0, now)
        finish_sorted = np.empty(n, dtype=np.float64)
        new_free = np.empty(g, dtype=np.float64)
        new_busy = np.empty(g, dtype=np.float64)
        single = lens == 1
        sidx = starts[single]
        fs = base[single] + sorted_ser[sidx]
        finish_sorted[sidx] = fs
        new_free[single] = fs
        new_busy[single] = busy0[single] + sorted_ser[sidx]
        multi = np.flatnonzero(~single)
        if multi.size:
            # All multi-message groups fold in one padded 2D accumulate.
            # Each row is [start_value, s1, s2, ..., 0-pad]; a row-wise
            # accumulate is exactly the left fold ((start+s1)+s2)+... the
            # per-message path performs, and trailing +0.0 pads never get
            # read, so every extracted value is bit-identical.  The busy
            # counters need their own start value, hence the second block
            # of rows sharing one accumulate call.
            lens_m = lens[multi]
            m = multi.size
            width = int(lens_m.max())
            gid = np.repeat(np.arange(g), lens)
            multi_mask = ~single[gid]
            mask = np.arange(width)[None, :] < lens_m[:, None]
            body = np.zeros((m, width), dtype=np.float64)
            body[mask] = sorted_ser[multi_mask]
            mat = np.zeros((2 * m, width + 1), dtype=np.float64)
            mat[:m, 0] = base[multi]
            mat[m:, 0] = busy0[multi]
            mat[:m, 1:] = body
            mat[m:, 1:] = body
            acc = np.add.accumulate(mat, axis=1)
            finish_sorted[multi_mask] = acc[:m, 1:][mask]
            rows = np.arange(m)
            new_free[multi] = acc[rows, lens_m]
            new_busy[multi] = acc[m + rows, lens_m]
        nf = new_free.tolist()
        nb = new_busy.tolist()
        if up:
            for j, node in enumerate(group_nodes):
                nic = nics[node]
                nic.up_free = nf[j]
                nic.up_busy = nb[j]
        else:
            for j, node in enumerate(group_nodes):
                nic = nics[node]
                nic.down_free = nf[j]
                nic.down_busy = nb[j]
        result = np.empty(n, dtype=np.float64)
        result[order] = finish_sorted
        return result

    def _bulk_handler_done(self, event: Event) -> None:
        src, nbytes, handler, index = event._value
        self.stats.record(src, nbytes)
        handler(index)

    def _bulk_record_done(self, event: Event) -> None:
        src, _dst, nbytes = event._value
        self.stats.record(src, nbytes)

    def bulk_transfer_batched(self, transfers: Sequence[Tuple[int, int,
                                                              float]]
                              ) -> Event:
        """A whole bulk step with ONE completion event.

        Like :meth:`bulk_transfer`, but instead of per-message completion
        events the caller gets a single event firing when the *last*
        message has been delivered, whose value is the tuple of exact
        per-message delivery times (aligned with ``transfers``).  This is
        the cheapest interface for drivers that only consume the timing
        -- the whole step costs one agenda event plus the NumPy
        reservation pass, versus three-plus heap events and a generator
        per message on the per-process path.

        Per-message statistics are recorded when the event fires, in
        delivery order (ties in issue order), matching the accumulation
        order of the per-message path.  On a faulty fabric (or with
        ``vector_bulk`` off) the step degrades to per-message transfer
        processes plus a collector process, preserving per-message fault
        semantics; the collector fails if any message fails.
        """
        env = self.env
        n = len(transfers)
        self._check_active_bulk(transfers)
        if self.faults is not None or not env.engine.vector_bulk:
            times: List[Optional[float]] = [None] * n

            def note(index: int) -> None:
                times[index] = env.now

            def collect() -> Generator[Any, Any,
                                       Tuple[Optional[float], ...]]:
                if n:
                    yield env.all_of(self._bulk_fallback(transfers, note))
                return tuple(times)

            return env.process(collect(), name=f"bulk-batch:{n}")
        event = Event(env)
        if n == 0:
            event._ok = True
            event._value = ()
            env.schedule(event)
            return event
        now = env.now
        srcs, dsts, sizes = self._bulk_arrays(transfers, n)
        loop = srcs == dsts
        if loop.any():
            wire = np.flatnonzero(~loop)
            wire_srcs, wire_dsts = srcs[wire], dsts[wire]
            up_ser = sizes[wire] / self._up_rates[wire_srcs]
            down_ser = sizes[wire] / self._down_rates[wire_dsts]
            wire_lat = np.maximum(self._latencies[wire_srcs],
                                  self._latencies[wire_dsts])
            up_finish = self._reserve_direction(wire_srcs, up_ser,
                                                now, up=True)
            down_finish = self._reserve_direction(wire_dsts,
                                                  down_ser, now,
                                                  up=False)
            delivery = np.full(n, now, dtype=np.float64)
            delivery[wire] = (np.maximum(up_finish, down_finish)
                              + wire_lat)
        else:
            up_ser = sizes / self._up_rates[srcs]
            down_ser = sizes / self._down_rates[dsts]
            wire_lat = np.maximum(self._latencies[srcs],
                                  self._latencies[dsts])
            up_finish = self._reserve_direction(srcs, up_ser, now,
                                                up=True)
            down_finish = self._reserve_direction(dsts, down_ser, now,
                                                  up=False)
            delivery = (np.maximum(up_finish, down_finish)
                        + wire_lat)
        tel = env.telemetry
        if tel is not None:
            tel.metrics.counter("net.bulk_batches").inc()
            tel.metrics.counter("net.bulk_messages").inc(n)
        # Stats accumulate at fire time in delivery order (stable by issue
        # index), the order the per-message path records them in.
        order = np.argsort(delivery, kind="stable")
        wire_order = order[~loop[order]] if loop.any() else order
        event._ok = True
        event._value = tuple(delivery.tolist())
        assert event.callbacks is not None
        event.callbacks.append(self._bulk_batch_done(
            srcs[wire_order].tolist(), sizes[wire_order].tolist()))
        env.schedule(event, delay=float(delivery.max()) - now)
        return event

    def _bulk_batch_done(self, src_ord: List[Any],
                         size_ord: List[Any]) -> Callable[[Event], None]:
        def record(_event: Event) -> None:
            stats = self.stats
            bytes_sent = stats.bytes_sent
            per_node = stats.per_node_bytes
            get = per_node.get
            for src, nbytes in zip(src_ord, size_ord):
                bytes_sent += nbytes
                per_node[src] = get(src, 0.0) + nbytes
            stats.bytes_sent = bytes_sent
            stats.messages += len(size_ord)
        return record

    def _bulk_fallback(self, transfers: Any,
                       handler: Optional[Callable[[int], None]]
                       ) -> List[Any]:
        """Per-message oracle path: one transfer process per message."""
        if isinstance(transfers, np.ndarray):
            transfers = transfers.tolist()
        results: List[Any] = []
        for index, (src, dst, nbytes) in enumerate(transfers):
            src, dst, nbytes = int(src), int(dst), float(nbytes)
            results.append(self.env.process(
                self._bulk_one(src, dst, nbytes, handler, index),
                name=f"bulk:{src}->{dst}"))
        return results

    def _bulk_one(self, src: int, dst: int, nbytes: float,
                  handler: Optional[Callable[[int], None]],
                  index: int) -> Generator[Any, Any, None]:
        yield from self.transfer(src, dst, nbytes)
        if handler is not None:
            handler(index)

    # -- tagged message passing ------------------------------------------

    def _mailbox(self, dst: int, tag: Hashable) -> Store:
        key = (dst, tag)
        box = self._mailboxes.get(key)
        if box is None:
            box = Store(self.env)
            self._mailboxes[key] = box
        return box

    def send(self, src: int, dst: int, tag: Hashable, payload: Any,
             nbytes: float) -> Process:
        """Start an asynchronous tagged send; returns the transfer Process."""
        sent_at = self.env.now

        def _send() -> Generator[Any, Any, None]:
            yield from self.transfer(src, dst, nbytes)
            msg = Message(src=src, dst=dst, tag=tag, payload=payload,
                          nbytes=nbytes, sent_at=sent_at,
                          delivered_at=self.env.now)
            self._mailbox(dst, tag).put(msg)

        return self.env.process(_send(), name=f"send:{src}->{dst}:{tag}")

    def recv(self, dst: int, tag: Hashable) -> Event:
        """Event firing with the next :class:`Message` for (dst, tag)."""
        self._check_node(dst)
        return self._mailbox(dst, tag).get()

    # -- helpers -----------------------------------------------------------

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside [0, {self.num_nodes})")

    def pair_transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        """Uncontended time to move ``nbytes`` from src to dst through the
        pair's actual links: limited by the slower of src's uplink and
        dst's downlink, plus the slower endpoint's wire latency.  Uniform
        specs reduce this to ``spec.transfer_time(nbytes)`` exactly."""
        a, b = self.links[src], self.links[dst]
        rate = min(a.up_bytes_per_s, b.down_bytes_per_s)
        return max(a.latency_s, b.latency_s) + nbytes / rate

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Mean busy fraction across all NIC directions over ``horizon``."""
        horizon = self.env.now if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        busy = sum(n.up_busy + n.down_busy for n in self.nics)
        return busy / (2 * self.num_nodes * horizon)
