"""Network fabric model: full-duplex NICs, point-to-point transfers, mailboxes.

The model matches the assumptions the paper's cost analysis (§3.3) is built
on: homogeneous nodes, each with a full-duplex NIC, where sending an
``m``-byte message costs ``latency + m / bandwidth`` and the two directions
of a NIC are independent resources (Ring-allreduce exploits exactly this:
each node sends to its successor while receiving from its predecessor).

Contention is modelled by serializing transfers per NIC direction: a
transfer holds the sender's *uplink* and the receiver's *downlink* for its
serialization time.  Wire latency is added after serialization and does not
occupy either endpoint, so back-to-back messages pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Hashable, List, Optional, Sequence,
                    Tuple)

import numpy as np

from ..sim import Environment, Event, Interrupt, Store

__all__ = ["NetworkSpec", "Nic", "Fabric", "Message", "TransferStats"]


@dataclass(frozen=True)
class NetworkSpec:
    """Capacity of the inter-node network.

    bandwidth_gbps: per-direction NIC bandwidth in Gigabits/s (marketing
        units, e.g. 100 for the paper's EC2 cluster).
    latency_us: one-way wire latency in microseconds.
    efficiency: achievable fraction of line rate (protocol overheads);
        RDMA fabrics typically reach ~0.9.
    """

    bandwidth_gbps: float
    latency_us: float = 5.0
    efficiency: float = 0.9

    def __post_init__(self):
        if self.bandwidth_gbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_gbps}")
        if self.latency_us < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency_us}")
        if not 0 < self.efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")

    @property
    def bytes_per_second(self) -> float:
        """Effective payload bandwidth in bytes/s per direction."""
        return self.bandwidth_gbps * 1e9 / 8 * self.efficiency

    @property
    def latency_s(self) -> float:
        return self.latency_us * 1e-6

    def transfer_time(self, nbytes: float) -> float:
        """Uncontended time to move ``nbytes`` point-to-point."""
        return self.latency_s + nbytes / self.bytes_per_second


@dataclass
class TransferStats:
    """Aggregate accounting of fabric usage, for experiment reporting."""

    bytes_sent: float = 0.0
    messages: int = 0
    per_node_bytes: Dict[int, float] = field(default_factory=dict)

    def record(self, src: int, nbytes: float) -> None:
        self.bytes_sent += nbytes
        self.messages += 1
        self.per_node_bytes[src] = self.per_node_bytes.get(src, 0.0) + nbytes


class Nic:
    """A full-duplex network interface.

    Each direction is a FIFO serialization server tracked by a next-free
    timestamp.  Transfers reserve (sender-up, receiver-down) atomically at
    issue time, which models "a node talks to one peer at a time per
    direction" without the hold-and-wait deadlock a two-resource acquire
    would allow.
    """

    def __init__(self, env: Environment, spec: NetworkSpec):
        self.env = env
        self.spec = spec
        #: Simulated timestamps at which each direction becomes free.
        self.up_free = 0.0
        self.down_free = 0.0
        #: Cumulative seconds each direction spent busy (for utilization).
        self.up_busy = 0.0
        self.down_busy = 0.0


@dataclass(frozen=True)
class Message:
    """A delivered payload with its transfer metadata."""

    src: int
    dst: int
    tag: Hashable
    payload: Any
    nbytes: float
    sent_at: float
    delivered_at: float


class Fabric:
    """A cluster-wide network of ``num_nodes`` NICs plus tagged mailboxes.

    Two interfaces:

    * :meth:`transfer` -- timing-only point-to-point move (generator).
    * :meth:`send` / :meth:`recv` -- message passing with tags; ``send``
      spawns a background transfer process and ``recv`` blocks on the
      (dst, tag) mailbox.  Tags make protocols self-synchronizing without
      global barriers.
    """

    def __init__(self, env: Environment, num_nodes: int, spec: NetworkSpec):
        if num_nodes < 1:
            raise ValueError(f"need at least 1 node, got {num_nodes}")
        self.env = env
        self.spec = spec
        self.num_nodes = num_nodes
        self.nics = [Nic(env, spec) for _ in range(num_nodes)]
        self._mailboxes: Dict[Tuple[int, Hashable], Store] = {}
        self.stats = TransferStats()
        #: Optional :class:`~repro.faults.injector.FaultState` attached by a
        #: FaultInjector.  None means the pristine (and byte-identical to
        #: the pre-fault-subsystem) transfer path.
        self.faults = None

    # -- timing-only transfers -------------------------------------------

    def transfer(self, src: int, dst: int, nbytes: float,
                 span_parent=None):
        """Generator: completes when ``nbytes`` from src arrive at dst.

        Holds src's uplink and dst's downlink for the serialization time;
        wire latency is appended without occupying either NIC.  A loopback
        (src == dst) is free: local data never touches the NIC.

        ``span_parent`` links the telemetry transfer span under a causing
        span (a send task, a coordinator batch); it is ignored when no
        collector is attached.
        """
        self._check_node(src)
        self._check_node(dst)
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        if src == dst:
            return
        tel = self.env.telemetry
        if tel is None:
            if self.faults is not None:
                yield from self._transfer_faulty(src, dst, nbytes)
            else:
                yield from self._transfer_pristine(src, dst, nbytes)
            return
        span = tel.begin(f"xfer:{src}->{dst}", category="transfer",
                         track=f"node{src}/transfer", parent=span_parent,
                         at=self.env.now, src=src, dst=dst, nbytes=nbytes)
        try:
            if self.faults is not None:
                yield from self._transfer_faulty(src, dst, nbytes)
            else:
                yield from self._transfer_pristine(src, dst, nbytes)
        except BaseException as exc:
            tel.finish(span, self.env.now, outcome=type(exc).__name__)
            tel.metrics.counter("net.transfer_failures").inc()
            raise
        tel.finish(span, self.env.now, outcome="delivered")
        tel.metrics.counter("net.bytes_sent").inc(nbytes)
        tel.metrics.counter("net.messages").inc()
        tel.metrics.histogram("net.transfer_s").observe(span.duration)

    def _transfer_pristine(self, src: int, dst: int, nbytes: float):
        """The fault-free transfer path (no FaultState attached)."""
        env = self.env
        sender, receiver = self.nics[src], self.nics[dst]
        serialize = nbytes / self.spec.bytes_per_second
        # Each direction is an independent fluid FIFO: the sender's uplink
        # and the receiver's downlink each process the bytes when they get
        # to them, and delivery completes when the slower side has.  This
        # avoids convoy collapse under incast (an idle uplink is never
        # blocked just because the peer's downlink is backed up).
        up_finish = max(env.now, sender.up_free) + serialize
        down_finish = max(env.now, receiver.down_free) + serialize
        sender.up_free = up_finish
        receiver.down_free = down_finish
        sender.up_busy += serialize
        receiver.down_busy += serialize
        finish = max(up_finish, down_finish)
        yield env.timeout(finish + self.spec.latency_s - env.now)
        self.stats.record(src, nbytes)

    def _transfer_faulty(self, src: int, dst: int, nbytes: float):
        """The transfer path when a FaultState is attached.

        Semantics of the fault model:

        * a partitioned link (or a dead destination) *stalls* the transfer
          -- like TCP retransmitting into a black hole -- until the link is
          restored, the node restarts, or the caller's timeout interrupts
          the wait;
        * a transient failure consumes half the serialization time on the
          sender's uplink, then loses the bytes (recorded as dropped);
        * a degraded link stretches serialization by the degradation
          factor;
        * a destination that dies while bytes are in flight drops them at
          delivery time;
        * an interrupted (abandoned-by-timeout) attempt records its bytes
          as dropped before re-raising, so conservation still balances.

        With an attached-but-quiescent FaultState (empty schedule) this
        path performs the identical event sequence to the pristine one, so
        timing and trace hashes match exactly.
        """
        from ..faults.errors import TransferError  # local: avoids a cycle

        env = self.env
        faults = self.faults
        record = faults.log.begin(env.now, src, dst, nbytes)
        try:
            while faults.blocked(src, dst):
                yield faults.wait_event(src, dst)
            if faults.is_dead(src):
                record.drop(env.now, "src-dead")
                raise TransferError(src, dst, nbytes, "source node is dead")
            sender, receiver = self.nics[src], self.nics[dst]
            serialize = (nbytes / self.spec.bytes_per_second
                         * faults.link_factor(src, dst))
            if faults.take_transient(src, dst):
                partial = serialize * 0.5
                up_finish = max(env.now, sender.up_free) + partial
                sender.up_free = up_finish
                sender.up_busy += partial
                yield env.timeout(up_finish - env.now)
                record.drop(env.now, "transient")
                raise TransferError(src, dst, nbytes,
                                    "transient send failure")
            up_finish = max(env.now, sender.up_free) + serialize
            down_finish = max(env.now, receiver.down_free) + serialize
            sender.up_free = up_finish
            receiver.down_free = down_finish
            sender.up_busy += serialize
            receiver.down_busy += serialize
            finish = max(up_finish, down_finish)
            yield env.timeout(finish + self.spec.latency_s - env.now)
            if faults.is_dead(dst):
                record.drop(env.now, "dst-dead")
                raise TransferError(src, dst, nbytes,
                                    "destination crashed in flight")
            self.stats.record(src, nbytes)
            record.deliver(env.now)
        except Interrupt:
            record.drop(env.now, "abandoned")
            raise

    # -- vectorized bulk transfers ---------------------------------------

    def bulk_transfer(self, transfers: Sequence[Tuple[int, int, float]],
                      handler: Optional[Callable[[int], None]] = None):
        """Issue a batch of point-to-point transfers in one reservation pass.

        ``transfers`` is a sequence of ``(src, dst, nbytes)`` triples, all
        issued at the current instant.  Instead of spawning one generator
        process (and its initializer, timeout, and completion events) per
        message, the NIC reservation arithmetic for the whole batch runs as
        a NumPy pass and each message gets exactly one delivery event.

        The arithmetic reproduces :meth:`transfer` bit for bit: messages
        sharing a NIC direction are serialized in list order with a
        left-to-right ``np.add.accumulate`` (the same float addition
        sequence the sequential path performs), and per-message statistics
        are recorded in each delivery callback so accumulation order
        matches the per-message path's delivery order.

        Two completion interfaces:

        * ``handler`` given -- ``handler(index)`` is invoked at message
          ``index``'s delivery instant.  Delivery events are pooled
          carriers; nothing user-visible is retained.
        * ``handler`` omitted -- returns one completion event per message,
          firing at its delivery instant with ``(src, dst, nbytes)`` as
          value.

        When a :class:`FaultState` is attached (or the engine's
        ``vector_bulk`` knob is off) the batch falls back to one
        :meth:`transfer` process per message, so crash/partition semantics
        -- including aborting mid-bulk -- are exactly the per-message
        ones; fallback completion events are the transfer processes
        themselves and fail with the per-message ``TransferError``.

        Loopback messages (src == dst) are free, as on :meth:`transfer`:
        no NIC time, no statistics, completion at the issue instant
        (``handler`` is invoked synchronously).
        """
        n = len(transfers)
        if n == 0:
            return None if handler is not None else []
        env = self.env
        if self.faults is not None or not env.engine.vector_bulk:
            return self._bulk_fallback(transfers, handler)
        now = env.now
        srcs, dsts, sizes = self._bulk_arrays(transfers, n)
        serialize = sizes / self.spec.bytes_per_second
        loop = srcs == dsts
        if loop.any():
            wire = np.flatnonzero(~loop)
            wire_srcs, wire_dsts = srcs[wire], dsts[wire]
            wire_ser = serialize[wire]
        else:
            wire = None
            wire_srcs, wire_dsts, wire_ser = srcs, dsts, serialize
        up_finish = self._reserve_direction(wire_srcs, wire_ser, now,
                                            up=True)
        down_finish = self._reserve_direction(wire_dsts, wire_ser, now,
                                              up=False)
        wire_delays = (np.maximum(up_finish, down_finish)
                       + self.spec.latency_s - now)
        if wire is None:
            delays = wire_delays.tolist()
        else:
            full = np.zeros(n, dtype=np.float64)
            full[wire] = wire_delays
            delays = full.tolist()
        loop_list = loop.tolist()
        src_list = srcs.tolist()
        size_list = sizes.tolist()
        tel = env.telemetry
        if tel is not None:
            tel.metrics.counter("net.bulk_batches").inc()
            tel.metrics.counter("net.bulk_messages").inc(n)
        if handler is not None:
            done = self._bulk_handler_done
            acquire = env._acquire_carrier
            schedule = env.schedule
            for i in range(n):
                if loop_list[i]:
                    handler(i)
                    continue
                carrier = acquire(True, (src_list[i], size_list[i],
                                         handler, i))
                carrier.callbacks.append(done)
                schedule(carrier, delay=delays[i])
            return None
        events = []
        record = self._bulk_record_done
        dst_list = dsts.tolist()
        for i in range(n):
            event = Event(env)
            event._ok = True
            event._value = (src_list[i], dst_list[i], size_list[i])
            if not loop_list[i]:
                event.callbacks.append(record)
            env.schedule(event, delay=delays[i])
            events.append(event)
        return events

    def _bulk_arrays(self, transfers, n: int):
        """Validated (srcs, dsts, sizes) column arrays for a bulk batch."""
        arr = np.asarray(transfers, dtype=np.float64)
        if arr.shape != (n, 3):
            raise ValueError(
                "bulk transfers must be (src, dst, nbytes) triples")
        srcs = arr[:, 0].astype(np.int64)
        dsts = arr[:, 1].astype(np.int64)
        sizes = np.ascontiguousarray(arr[:, 2])
        lo = min(int(srcs.min()), int(dsts.min()))
        hi = max(int(srcs.max()), int(dsts.max()))
        if lo < 0 or hi >= self.num_nodes:
            raise ValueError(f"node outside [0, {self.num_nodes})")
        if np.any(sizes < 0):
            raise ValueError("negative transfer size in bulk")
        return srcs, dsts, sizes

    def _reserve_direction(self, nodes, serialize, now: float,
                           up: bool) -> "np.ndarray":
        """Per-NIC-direction FIFO reservation for one side of a batch.

        Groups messages by NIC (stable sort keeps list order within a
        group) and serializes each group with a left-fold accumulate whose
        float addition order is identical to issuing the messages one by
        one.  Busy-time counters likewise accumulate per message, in the
        same order, so utilization metrics match the sequential path to
        the last bit.
        """
        n = len(nodes)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        order = np.argsort(nodes, kind="stable")
        sorted_nodes = nodes[order]
        sorted_ser = serialize[order]
        cuts = np.flatnonzero(sorted_nodes[1:] != sorted_nodes[:-1]) + 1
        starts = np.concatenate(([0], cuts))
        ends = np.concatenate((cuts, [n]))
        lens = ends - starts
        g = len(starts)
        nics = self.nics
        group_nodes = sorted_nodes[starts].tolist()
        free0 = np.empty(g, dtype=np.float64)
        busy0 = np.empty(g, dtype=np.float64)
        if up:
            for j, node in enumerate(group_nodes):
                nic = nics[node]
                free0[j] = nic.up_free
                busy0[j] = nic.up_busy
        else:
            for j, node in enumerate(group_nodes):
                nic = nics[node]
                free0[j] = nic.down_free
                busy0[j] = nic.down_busy
        base = np.maximum(free0, now)
        finish_sorted = np.empty(n, dtype=np.float64)
        new_free = np.empty(g, dtype=np.float64)
        new_busy = np.empty(g, dtype=np.float64)
        single = lens == 1
        sidx = starts[single]
        fs = base[single] + sorted_ser[sidx]
        finish_sorted[sidx] = fs
        new_free[single] = fs
        new_busy[single] = busy0[single] + sorted_ser[sidx]
        multi = np.flatnonzero(~single)
        if multi.size:
            # All multi-message groups fold in one padded 2D accumulate.
            # Each row is [start_value, s1, s2, ..., 0-pad]; a row-wise
            # accumulate is exactly the left fold ((start+s1)+s2)+... the
            # per-message path performs, and trailing +0.0 pads never get
            # read, so every extracted value is bit-identical.  The busy
            # counters need their own start value, hence the second block
            # of rows sharing one accumulate call.
            lens_m = lens[multi]
            m = multi.size
            width = int(lens_m.max())
            gid = np.repeat(np.arange(g), lens)
            multi_mask = ~single[gid]
            mask = np.arange(width)[None, :] < lens_m[:, None]
            body = np.zeros((m, width), dtype=np.float64)
            body[mask] = sorted_ser[multi_mask]
            mat = np.zeros((2 * m, width + 1), dtype=np.float64)
            mat[:m, 0] = base[multi]
            mat[m:, 0] = busy0[multi]
            mat[:m, 1:] = body
            mat[m:, 1:] = body
            acc = np.add.accumulate(mat, axis=1)
            finish_sorted[multi_mask] = acc[:m, 1:][mask]
            rows = np.arange(m)
            new_free[multi] = acc[rows, lens_m]
            new_busy[multi] = acc[m + rows, lens_m]
        nf = new_free.tolist()
        nb = new_busy.tolist()
        if up:
            for j, node in enumerate(group_nodes):
                nic = nics[node]
                nic.up_free = nf[j]
                nic.up_busy = nb[j]
        else:
            for j, node in enumerate(group_nodes):
                nic = nics[node]
                nic.down_free = nf[j]
                nic.down_busy = nb[j]
        result = np.empty(n, dtype=np.float64)
        result[order] = finish_sorted
        return result

    def _bulk_handler_done(self, event) -> None:
        src, nbytes, handler, index = event._value
        self.stats.record(src, nbytes)
        handler(index)

    def _bulk_record_done(self, event) -> None:
        src, _dst, nbytes = event._value
        self.stats.record(src, nbytes)

    def bulk_transfer_batched(self, transfers: Sequence[Tuple[int, int,
                                                              float]]):
        """A whole bulk step with ONE completion event.

        Like :meth:`bulk_transfer`, but instead of per-message completion
        events the caller gets a single event firing when the *last*
        message has been delivered, whose value is the tuple of exact
        per-message delivery times (aligned with ``transfers``).  This is
        the cheapest interface for drivers that only consume the timing
        -- the whole step costs one agenda event plus the NumPy
        reservation pass, versus three-plus heap events and a generator
        per message on the per-process path.

        Per-message statistics are recorded when the event fires, in
        delivery order (ties in issue order), matching the accumulation
        order of the per-message path.  On a faulty fabric (or with
        ``vector_bulk`` off) the step degrades to per-message transfer
        processes plus a collector process, preserving per-message fault
        semantics; the collector fails if any message fails.
        """
        env = self.env
        n = len(transfers)
        if self.faults is not None or not env.engine.vector_bulk:
            times: List[Optional[float]] = [None] * n

            def note(index: int) -> None:
                times[index] = env.now

            def collect():
                if n:
                    yield env.all_of(self._bulk_fallback(transfers, note))
                return tuple(times)

            return env.process(collect(), name=f"bulk-batch:{n}")
        event = Event(env)
        if n == 0:
            event._ok = True
            event._value = ()
            env.schedule(event)
            return event
        now = env.now
        srcs, dsts, sizes = self._bulk_arrays(transfers, n)
        serialize = sizes / self.spec.bytes_per_second
        loop = srcs == dsts
        if loop.any():
            wire = np.flatnonzero(~loop)
            up_finish = self._reserve_direction(srcs[wire], serialize[wire],
                                                now, up=True)
            down_finish = self._reserve_direction(dsts[wire],
                                                  serialize[wire], now,
                                                  up=False)
            delivery = np.full(n, now, dtype=np.float64)
            delivery[wire] = (np.maximum(up_finish, down_finish)
                              + self.spec.latency_s)
        else:
            up_finish = self._reserve_direction(srcs, serialize, now,
                                                up=True)
            down_finish = self._reserve_direction(dsts, serialize, now,
                                                  up=False)
            delivery = (np.maximum(up_finish, down_finish)
                        + self.spec.latency_s)
        tel = env.telemetry
        if tel is not None:
            tel.metrics.counter("net.bulk_batches").inc()
            tel.metrics.counter("net.bulk_messages").inc(n)
        # Stats accumulate at fire time in delivery order (stable by issue
        # index), the order the per-message path records them in.
        order = np.argsort(delivery, kind="stable")
        wire_order = order[~loop[order]] if loop.any() else order
        event._ok = True
        event._value = tuple(delivery.tolist())
        event.callbacks.append(self._bulk_batch_done(
            srcs[wire_order].tolist(), sizes[wire_order].tolist()))
        env.schedule(event, delay=float(delivery.max()) - now)
        return event

    def _bulk_batch_done(self, src_ord, size_ord):
        def record(_event):
            stats = self.stats
            bytes_sent = stats.bytes_sent
            per_node = stats.per_node_bytes
            get = per_node.get
            for src, nbytes in zip(src_ord, size_ord):
                bytes_sent += nbytes
                per_node[src] = get(src, 0.0) + nbytes
            stats.bytes_sent = bytes_sent
            stats.messages += len(size_ord)
        return record

    def _bulk_fallback(self, transfers, handler):
        """Per-message oracle path: one transfer process per message."""
        if isinstance(transfers, np.ndarray):
            transfers = transfers.tolist()
        results: List[Any] = []
        for index, (src, dst, nbytes) in enumerate(transfers):
            src, dst, nbytes = int(src), int(dst), float(nbytes)
            results.append(self.env.process(
                self._bulk_one(src, dst, nbytes, handler, index),
                name=f"bulk:{src}->{dst}"))
        return results

    def _bulk_one(self, src, dst, nbytes, handler, index):
        yield from self.transfer(src, dst, nbytes)
        if handler is not None:
            handler(index)

    # -- tagged message passing ------------------------------------------

    def _mailbox(self, dst: int, tag: Hashable) -> Store:
        key = (dst, tag)
        box = self._mailboxes.get(key)
        if box is None:
            box = Store(self.env)
            self._mailboxes[key] = box
        return box

    def send(self, src: int, dst: int, tag: Hashable, payload: Any,
             nbytes: float):
        """Start an asynchronous tagged send; returns the transfer Process."""
        sent_at = self.env.now

        def _send():
            yield from self.transfer(src, dst, nbytes)
            msg = Message(src=src, dst=dst, tag=tag, payload=payload,
                          nbytes=nbytes, sent_at=sent_at,
                          delivered_at=self.env.now)
            self._mailbox(dst, tag).put(msg)

        return self.env.process(_send(), name=f"send:{src}->{dst}:{tag}")

    def recv(self, dst: int, tag: Hashable):
        """Event firing with the next :class:`Message` for (dst, tag)."""
        self._check_node(dst)
        return self._mailbox(dst, tag).get()

    # -- helpers -----------------------------------------------------------

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside [0, {self.num_nodes})")

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Mean busy fraction across all NIC directions over ``horizon``."""
        horizon = self.env.now if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        busy = sum(n.up_busy + n.down_busy for n in self.nics)
        return busy / (2 * self.num_nodes * horizon)
