"""Network fabric model (full-duplex NICs, tagged message passing)."""

from .fabric import (Fabric, LinkSpec, Message, NetworkSpec, Nic,
                     StragglerProfile, TransferStats, WanTier)

__all__ = ["Fabric", "LinkSpec", "Message", "NetworkSpec", "Nic",
           "StragglerProfile", "TransferStats", "WanTier"]
