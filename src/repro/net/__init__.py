"""Network fabric model (full-duplex NICs, tagged message passing)."""

from .fabric import Fabric, Message, NetworkSpec, Nic, TransferStats

__all__ = ["Fabric", "Message", "NetworkSpec", "Nic", "TransferStats"]
